// Package sssp implements single-source shortest path as a visitor over the
// distributed asynchronous visitor queue. The paper's framework descends
// from the authors' multithreaded asynchronous work (§IV-A, reference [4]),
// where SSSP is one of the three original kernels; it generalizes the BFS
// visitor to weighted edges as a label-correcting traversal: visitors carry
// tentative distances, pre_visit admits only improvements, and the local
// priority queue orders visitors by distance (an asynchronous, distributed
// relaxation of Dijkstra's ordering).
//
// Edge weights are synthesized deterministically from the endpoint pair (the
// CSR stores no weights), symmetric for undirected graphs, so every rank and
// the sequential reference agree.
package sssp

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// Unreached is the distance of vertices not reached by the traversal (∞).
const Unreached = ^uint64(0)

// MaxWeight bounds synthesized edge weights to [1, MaxWeight].
const MaxWeight = 255

// MaxDist bounds any legitimate tentative distance: the longest simple path
// is under 2^32 edges at any simulated scale and each edge weighs at most
// MaxWeight < 2^8, so real distances stay below 2^40. A visitor above this
// bound can only come from corruption (bit flips on an unreliable transport,
// or an overflowed relaxation) and is rejected at pre_visit, before it can
// beat honest distances in the improvement test.
const MaxDist = uint64(1) << 40

// Delta is the bucket width for delta-stepping: visitors are drained in
// ⌊Dist/Delta⌋ order instead of strict Dist order, so the local scheduler
// needs only O(1) bucket push/pop rather than a binary heap. Relaxations of
// light edges (weight < Delta) land in the current or next bucket and are
// processed in the same wave; heavy-edge relaxations defer to later buckets.
// Set to MaxWeight+1 so every edge is "light": one bucket per weight-rounded
// distance plateau, the classic sweet spot for uniform random weights.
const Delta = MaxWeight + 1

// Weight returns the deterministic, symmetric weight of edge {u, v}.
func Weight(u, v graph.Vertex, seed uint64) uint64 {
	if u > v {
		u, v = v, u
	}
	h := xrand.Mix64(uint64(u)*0x9e3779b97f4a7c15 ^ xrand.Mix64(uint64(v)+seed))
	return h%MaxWeight + 1
}

// Visitor carries a tentative distance to a vertex.
type Visitor struct {
	V      graph.Vertex
	Dist   uint64
	Parent graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 24

// SSSP is one rank's algorithm state.
type SSSP struct {
	part *partition.Part
	seed uint64

	Dist   []uint64
	Parent []graph.Vertex

	ghostDist []uint64
}

var _ core.GhostAlgorithm[Visitor] = (*SSSP)(nil)

// New initializes SSSP state: every vertex at distance ∞.
func New(part *partition.Part, weightSeed uint64) *SSSP {
	s := &SSSP{
		part:   part,
		seed:   weightSeed,
		Dist:   make([]uint64, part.StateLen),
		Parent: make([]graph.Vertex, part.StateLen),
	}
	for i := range s.Dist {
		s.Dist[i] = Unreached
		s.Parent[i] = graph.Nil
	}
	return s
}

// AttachGhosts allocates ghost filter state. SSSP tolerates the imprecise
// ghost filter for the same reason BFS does: distances improve
// monotonically, so a stale ghost can only fail to filter, never block a
// better path.
func (s *SSSP) AttachGhosts(t *core.GhostTable) {
	s.ghostDist = make([]uint64, t.Len())
	for i := range s.ghostDist {
		s.ghostDist[i] = Unreached
	}
}

// PreVisit admits the visitor iff it improves the current distance. It is
// the wire-decode admission point, so it also rejects distances beyond
// MaxDist: a corrupted visitor with a near-∞ distance must not be allowed to
// relax edges (its Dist+Weight would wrap past Unreached into a tiny garbage
// distance that wins every improvement test downstream).
func (s *SSSP) PreVisit(v Visitor) bool {
	if v.Dist > MaxDist {
		return false
	}
	i, ok := s.part.LocalIndex(v.V)
	if !ok {
		return false
	}
	if v.Dist < s.Dist[i] {
		s.Dist[i] = v.Dist
		s.Parent[i] = v.Parent
		return true
	}
	return false
}

// PreVisitGhost applies the improvement test to the local ghost copy.
func (s *SSSP) PreVisitGhost(v Visitor, gi int) bool {
	if v.Dist < s.ghostDist[gi] {
		s.ghostDist[gi] = v.Dist
		return true
	}
	return false
}

// Visit relaxes the locally stored out-edges. The addition saturates: a
// near-max distance (possible only via corruption that slipped past the
// PreVisit bound, e.g. state poked directly by a fault harness) must not wrap
// past Unreached into a small garbage value that would win improvement tests.
func (s *SSSP) Visit(v Visitor, q *core.Queue[Visitor]) {
	i := q.LocalRow(v.V)
	if v.Dist != s.Dist[i] {
		return
	}
	for _, t := range q.OutEdges(v.V) {
		nd := v.Dist + Weight(v.V, t, s.seed)
		if nd < v.Dist {
			nd = Unreached // saturate instead of wrapping
		}
		q.Push(Visitor{V: t, Dist: nd, Parent: v.V})
	}
}

// Less orders the local queue by tentative distance.
func (s *SSSP) Less(a, b Visitor) bool { return a.Dist < b.Dist }

// Bucket implements core.BucketAlgorithm: delta-stepping's bucket index.
// Draining in ⌊Dist/Delta⌋ order is enough for the label-correcting
// relaxation to converge with near-Dijkstra work, and lets the queue use a
// calendar of FIFO buckets (O(1) push/pop) instead of the binary heap.
func (s *SSSP) Bucket(v Visitor) uint64 { return v.Dist / Delta }

// Encode appends the 24-byte wire form. Distances stay well below 2^40 at
// any simulated scale, so the parent shares the word's high bits safely —
// but we keep the simple 3-word layout for clarity.
func (s *SSSP) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint64(w[8:], v.Dist)
	binary.LittleEndian.PutUint64(w[16:], uint64(v.Parent))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (s *SSSP) Decode(buf []byte) Visitor {
	return Visitor{
		V:      graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Dist:   binary.LittleEndian.Uint64(buf[8:]),
		Parent: graph.Vertex(binary.LittleEndian.Uint64(buf[16:])),
	}
}

// Result bundles one rank's SSSP output.
type Result struct {
	*SSSP
	Stats core.Stats
}

// Run executes SSSP from source collectively across all ranks.
func Run(r *rt.Rank, part *partition.Part, source graph.Vertex, weightSeed uint64, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("sssp.run", r.Rank())
	defer sp.End()
	s := New(part, weightSeed)
	if cfg.Ghosts != nil {
		s.AttachGhosts(cfg.Ghosts)
	}
	q := core.NewQueue[Visitor](r, part, s, cfg)
	if part.IsMaster(source) {
		q.Push(Visitor{V: source, Dist: 0, Parent: source})
	}
	q.Run()
	return &Result{SSSP: s, Stats: q.Stats()}
}
