package bfs

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// runDistributedDO mirrors runDistributedBFS over the direction-optimizing
// path.
func runDistributedDO(t *testing.T, edges []graph.Edge, n uint64, p int,
	source graph.Vertex, mkCfg func(part *partition.Part) core.Config) (levels []uint32, parents []graph.Vertex) {
	t.Helper()
	gl := algotest.NewGathered(n)
	gp := algotest.NewGathered(n)
	var buLevels int
	algotest.RunOnParts(t, edges, n, p, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := RunDO(r, part, source, mkCfg(part))
		gl.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Level[i])
		})
		gp.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Parent[i])
		})
	})
	_ = buLevels
	levels = make([]uint32, n)
	parents = make([]graph.Vertex, n)
	for v := range levels {
		levels[v] = uint32(gl.Values[v])
		parents[v] = graph.Vertex(gp.Values[v])
	}
	return levels, parents
}

// TestDOBFSMatchesTopDown requires the direction-optimizing BFS to produce
// levels identical to the visitor-queue BFS (and the sequential reference)
// with valid parents, across rank counts and graph shapes — the
// hash-identity bar from the acceptance criteria.
func TestDOBFSMatchesTopDown(t *testing.T) {
	graphs := []struct {
		name  string
		edges []graph.Edge
		n     uint64
		src   graph.Vertex
	}{
		{"random", randomGraph(64, 200, 3), 64, 5},
		{"sparse", randomGraph(96, 60, 9), 96, 1},
	}
	for _, g := range graphs {
		for _, p := range []int{1, 2, 4, 8} {
			want, _ := runDistributedBFS(t, g.edges, g.n, p, g.src, partition.BuildEdgeList, defaultCfg)
			got, parents := runDistributedDO(t, g.edges, g.n, p, g.src, defaultCfg)
			for v := uint64(0); v < g.n; v++ {
				if got[v] != want[v] {
					t.Fatalf("%s/p=%d: DO level(%d) = %d, top-down says %d", g.name, p, v, got[v], want[v])
				}
			}
			checkAgainstRef(t, g.edges, g.n, g.src, got, parents)
		}
	}
}

// TestDOBFSOnRMAT exercises the regime the hybrid exists for: a scale-free
// RMAT graph whose frontier explodes, forcing at least one bottom-up level.
func TestDOBFSOnRMAT(t *testing.T) {
	g := generators.NewGraph500(10, 8)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	for _, p := range []int{1, 4} {
		want, _ := runDistributedBFS(t, edges, n, p, 2, partition.BuildEdgeList, defaultCfg)
		got, parents := runDistributedDO(t, edges, n, p, 2, defaultCfg)
		for v := uint64(0); v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("p=%d: DO level(%d) = %d, top-down says %d", p, v, got[v], want[v])
			}
		}
		checkAgainstRef(t, edges, n, 2, got, parents)
	}
}

// TestDOBFSSwitchesModes pins the heuristic actually firing on a dense
// low-diameter graph: at least one bottom-up level must run, and the result
// must still match the reference.
func TestDOBFSSwitchesModes(t *testing.T) {
	g := generators.NewGraph500(9, 16)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	var buLevels int
	// p=1 drives the state machine directly: scan/merge and the mode
	// decision all run, and no messages may be emitted.
	algotest.RunOnParts(t, edges, n, 1, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		d := NewDO(part, 0, func(dest int, payload []byte) {
			t.Fatalf("p=1 run must not send (dest %d)", dest)
		}, nil)
		d.Start()
		for d.TryAdvance() {
		}
		if !d.Done() {
			t.Fatal("p=1 DO-BFS did not finish")
		}
		buLevels = d.BottomUpLevels
	})
	if buLevels == 0 {
		t.Fatal("dense RMAT BFS never switched bottom-up; heuristic dead")
	}
}

// TestDOBFSDisconnected: unreached vertices stay at ∞ with Nil parents.
func TestDOBFSDisconnected(t *testing.T) {
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 4, Dst: 5}})
	levels, parents := runDistributedDO(t, edges, 8, 2, 0, defaultCfg)
	if levels[4] != Unreached || levels[1] != 1 {
		t.Fatalf("levels = %v", levels)
	}
	if parents[4] != graph.Nil {
		t.Fatalf("unreached vertex has parent %d", parents[4])
	}
}
