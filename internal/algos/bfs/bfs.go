// Package bfs implements breadth-first search as a visitor over the
// distributed asynchronous visitor queue (paper §VI-A, Algorithms 2 and 3).
// BFS is the Graph500 kernel: levels spread from a source, each visitor
// carrying a candidate path length, with pre_visit admitting only visitors
// that improve the vertex's current length. BFS declares ghost usage: the
// ghost copy of a hub's level acts as an imprecise local filter that
// suppresses redundant visitors to high in-degree vertices (§IV-B).
package bfs

import (
	"encoding/binary"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
)

// Unreached is the level of vertices not reached by the traversal (∞).
const Unreached = ^uint32(0)

// Visitor carries a candidate BFS length to a vertex (Algorithm 2 state).
type Visitor struct {
	V      graph.Vertex
	Length uint32
	Parent graph.Vertex
}

// Vertex returns the visitor's target.
func (v Visitor) Vertex() graph.Vertex { return v.V }

const wireBytes = 8 + 4 + 8

// BFS is one rank's algorithm state: the level and parent of every locally
// held vertex (master and replica rows).
type BFS struct {
	part *partition.Part

	Level  []uint32
	Parent []graph.Vertex

	ghostLevel []uint32 // parallel to the rank's ghost table; nil = no ghosts
}

var _ core.GhostAlgorithm[Visitor] = (*BFS)(nil)

// New initializes BFS state over the partition: every vertex at length ∞
// (Algorithm 3 lines 4–7).
func New(part *partition.Part) *BFS {
	b := &BFS{
		part:   part,
		Level:  make([]uint32, part.StateLen),
		Parent: make([]graph.Vertex, part.StateLen),
	}
	for i := range b.Level {
		b.Level[i] = Unreached
		b.Parent[i] = graph.Nil
	}
	return b
}

// AttachGhosts allocates ghost filter state for the rank's ghost table.
func (b *BFS) AttachGhosts(t *core.GhostTable) {
	b.ghostLevel = make([]uint32, t.Len())
	for i := range b.ghostLevel {
		b.ghostLevel[i] = Unreached
	}
}

// PreVisit admits the visitor iff it improves the vertex's current length,
// recording the new length and parent (Algorithm 2 lines 4–11).
func (b *BFS) PreVisit(v Visitor) bool {
	i, ok := b.part.LocalIndex(v.V)
	if !ok {
		return false
	}
	if v.Length < b.Level[i] {
		b.Level[i] = v.Length
		b.Parent[i] = v.Parent
		return true
	}
	return false
}

// PreVisitGhost applies the same improvement test to the never-synchronized
// local ghost copy; a false return filters the visitor before transmission.
func (b *BFS) PreVisitGhost(v Visitor, gi int) bool {
	if v.Length < b.ghostLevel[gi] {
		b.ghostLevel[gi] = v.Length
		return true
	}
	return false
}

// Visit expands the frontier: if this visitor still holds the vertex's
// current length, push a visitor for every (locally stored) out-edge
// (Algorithm 2 lines 12–19).
func (b *BFS) Visit(v Visitor, q *core.Queue[Visitor]) {
	i := q.LocalRow(v.V)
	if v.Length != b.Level[i] {
		return
	}
	next := v.Length + 1
	for _, t := range q.OutEdges(v.V) {
		q.Push(Visitor{V: t, Length: next, Parent: v.V})
	}
}

// Less orders the local queue by length (Algorithm 2 lines 20–22); the
// framework breaks ties by vertex id for page locality.
func (b *BFS) Less(a, c Visitor) bool { return a.Length < c.Length }

// Encode appends the 20-byte wire form.
func (b *BFS) Encode(v Visitor, buf []byte) []byte {
	var w [wireBytes]byte
	binary.LittleEndian.PutUint64(w[0:], uint64(v.V))
	binary.LittleEndian.PutUint32(w[8:], v.Length)
	binary.LittleEndian.PutUint64(w[12:], uint64(v.Parent))
	return append(buf, w[:]...)
}

// Decode parses one visitor record.
func (b *BFS) Decode(buf []byte) Visitor {
	return Visitor{
		V:      graph.Vertex(binary.LittleEndian.Uint64(buf[0:])),
		Length: binary.LittleEndian.Uint32(buf[8:]),
		Parent: graph.Vertex(binary.LittleEndian.Uint64(buf[12:])),
	}
}

// Result bundles one rank's BFS output.
type Result struct {
	*BFS
	Stats core.Stats
}

// Run executes a BFS from source, collectively across all ranks. cfg.Ghosts,
// if set, enables hub filtering (the algorithm declares ghost usage).
func Run(r *rt.Rank, part *partition.Part, source graph.Vertex, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("bfs.run", r.Rank())
	defer sp.End()
	b := New(part)
	if cfg.Ghosts != nil {
		b.AttachGhosts(cfg.Ghosts)
	}
	q := core.NewQueue[Visitor](r, part, b, cfg)
	if part.IsMaster(source) {
		q.Push(Visitor{V: source, Length: 0, Parent: source})
	}
	q.Run()
	return &Result{BFS: b, Stats: q.Stats()}
}

// MaxLevel returns the deepest finite level among this rank's master
// vertices (combine across ranks with AllReduce Max).
func (b *BFS) MaxLevel() uint32 {
	lo, hi := b.part.Owners.MasterRange(b.part.Rank)
	var mx uint32
	for v := lo; v < hi; v++ {
		i, _ := b.part.LocalIndex(graph.Vertex(v))
		if l := b.Level[i]; l != Unreached && l > mx {
			mx = l
		}
	}
	return mx
}

// ReachedEdges returns the number of locally stored directed edges incident
// to reached vertices — summed over ranks and halved, the Graph500 traversed
// edge count for TEPS.
func (b *BFS) ReachedEdges() uint64 {
	var sum uint64
	for i := 0; i < b.part.StateLen; i++ {
		if b.Level[i] != Unreached {
			sum += b.part.CSR.Degree(i)
		}
	}
	return sum
}

// ReachedVertices returns the number of reached master vertices on this
// rank.
func (b *BFS) ReachedVertices() uint64 {
	lo, hi := b.part.Owners.MasterRange(b.part.Rank)
	var n uint64
	for v := lo; v < hi; v++ {
		i, _ := b.part.LocalIndex(graph.Vertex(v))
		if b.Level[i] != Unreached {
			n++
		}
	}
	return n
}
