// Direction-optimizing BFS (Beamer's hybrid, DESIGN.md §14): level-
// synchronous traversal that switches between top-down frontier expansion
// and bottom-up unvisited scans, driven by the frontier-vs-unvisited
// edge-count heuristic. Unlike the visitor-queue BFS (bfs.go), levels are
// dense replicated bitmaps: each rank scans its locally stored row portions
// and exchanges one sparse word-list delta per peer per level, so bottom-up
// phases touch no per-vertex visitor records at all.
//
// The protocol is collective-free — it runs on the same tagged mailbox and
// termination detector as every other query, so the multi-query engine can
// interleave it with other traversals. Per level, each rank sends exactly one
// level message to every peer (its local contribution to the next frontier)
// and advances when all p-1 peer contributions for that level have arrived;
// because every rank merges identical data, the direction decision is
// deterministic and identical everywhere without a barrier or reduction.
//
// Parent assignment never needs its own scan: when a vertex joins the
// frontier, its master finds a previous-level neighbor in its own row
// portion (undirected storage guarantees the reverse edge exists somewhere
// in the row); for split hub vertices whose master portion happens to lack
// one, the replica holding that portion sends a rare parent-candidate
// message.
package bfs

import (
	"encoding/binary"
	"math/bits"
	"runtime"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// Beamer's switching thresholds: go bottom-up when the frontier's edges
// exceed 1/Alpha of the edges incident to unvisited vertices; return
// top-down when the frontier shrinks below 1/Beta of all vertices.
const (
	Alpha = 14
	Beta  = 24
)

// DO message kinds (first payload byte).
const (
	doKindDeg    = 1 // replicated degree table fragment (master range)
	doKindLevel  = 2 // sparse next-frontier contribution for one level
	doKindParent = 3 // parent candidate for a split vertex's master
)

type doMode uint8

const (
	modeTopDown doMode = iota
	modeBottomUp
)

// RowHinter receives prefetch hints for rows the bottom-up scan is about to
// read; the engine passes its out-of-core pager (core.RowPager) so unvisited
// row scans overlap device fetches instead of faulting serially.
type RowHinter interface{ PrefetchRow(row int) }

// DO is one rank's direction-optimizing BFS state machine. Drive it with
// Handle (one delivered payload) and TryAdvance (scan/merge when possible);
// it reports completion via Done. Sends go through the injected send
// function, so the same machine serves the classic path (own mailbox) and
// the engine (shared tagged mailbox).
type DO struct {
	part *partition.Part
	n    uint64
	p    int
	send func(dest int, payload []byte)
	hint RowHinter // optional pager prefetch hints

	deg     []uint32 // replicated global degrees (u32: plenty at any simulated scale)
	degSeen []bool
	degLeft int

	visited      core.Bitmap
	frontier     core.Bitmap
	prevFrontier core.Bitmap // the just-retired frontier (parent level)
	contrib      core.Bitmap // this rank's next-frontier contribution

	Level  []uint32       // per local state index; Unreached = ∞
	Parent []graph.Vertex // per local state index; graph.Nil = none

	level  uint32 // depth of the current frontier
	mode   doMode
	sent   bool   // contribution for level+1 scanned and sent
	done   bool   // merged an empty frontier (or cancelled)
	uEdges uint64 // Σ deg over unvisited vertices (identical on all ranks)

	pending map[uint32]*doLevelAcc

	scratch []byte

	// TopDownLevels/BottomUpLevels count levels executed in each mode — the
	// ablation evidence bench-algos records next to the speedup.
	TopDownLevels, BottomUpLevels int
}

// doLevelAcc accumulates peer contributions for one level.
type doLevelAcc struct {
	seen []bool
	left int
	bits core.Bitmap
}

// NewDO builds the state machine. send transmits one protocol payload to a
// peer rank (never to self). hint may be nil.
func NewDO(part *partition.Part, source graph.Vertex, send func(dest int, payload []byte), hint RowHinter) *DO {
	d := &DO{
		part:         part,
		n:            part.NumVertices,
		p:            part.P,
		send:         send,
		hint:         hint,
		deg:          make([]uint32, part.NumVertices),
		degSeen:      make([]bool, part.P),
		degLeft:      part.P,
		visited:      core.NewBitmap(part.NumVertices),
		frontier:     core.NewBitmap(part.NumVertices),
		prevFrontier: core.NewBitmap(part.NumVertices),
		contrib:      core.NewBitmap(part.NumVertices),
		Level:        make([]uint32, part.StateLen),
		Parent:       make([]graph.Vertex, part.StateLen),
		pending:      make(map[uint32]*doLevelAcc),
	}
	for i := range d.Level {
		d.Level[i] = Unreached
		d.Parent[i] = graph.Nil
	}
	d.visited.Set(uint64(source))
	d.frontier.Set(uint64(source))
	if i, ok := part.LocalIndex(source); ok {
		d.Level[i] = 0
		d.Parent[i] = source
	}
	return d
}

// Start broadcasts this rank's degree-table fragment and merges its own.
// The degree table replicates once per traversal so the edge-count heuristic
// (and uEdges bookkeeping) is computable locally and identically everywhere.
func (d *DO) Start() {
	lo, hi := d.part.Owners.MasterRange(d.part.Rank)
	buf := d.scratch[:0]
	buf = append(buf, doKindDeg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.part.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hi-lo))
	for v := lo; v < hi; v++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.part.GlobalDegree(graph.Vertex(v))))
	}
	d.scratch = buf
	for r := 0; r < d.p; r++ {
		if r != d.part.Rank {
			d.send(r, buf)
		}
	}
	d.mergeDeg(d.part.Rank, lo, buf[9:])
}

func (d *DO) mergeDeg(src int, lo uint64, packed []byte) {
	if d.degSeen[src] {
		return
	}
	d.degSeen[src] = true
	d.degLeft--
	for i := 0; i*4+4 <= len(packed); i++ {
		d.deg[lo+uint64(i)] = binary.LittleEndian.Uint32(packed[i*4:])
	}
	if d.degLeft == 0 {
		for _, g := range d.deg {
			d.uEdges += uint64(g)
		}
		d.uEdges -= d.sumDeg(d.frontier) // the source is already visited
	}
}

// sumDeg returns Σ deg over the set bits of bm (global, replicated inputs ⇒
// identical on every rank).
func (d *DO) sumDeg(bm core.Bitmap) uint64 {
	var sum uint64
	for wi, w := range bm.Words() {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			sum += uint64(d.deg[uint64(wi)<<6+uint64(b)])
		}
	}
	return sum
}

// Handle applies one delivered protocol payload.
func (d *DO) Handle(payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case doKindDeg:
		if len(payload) < 9 {
			return
		}
		src := int(binary.LittleEndian.Uint32(payload[1:]))
		if src < 0 || src >= d.p {
			return
		}
		lo, _ := d.part.Owners.MasterRange(src)
		d.mergeDeg(src, lo, payload[9:])
	case doKindLevel:
		if len(payload) < 13 {
			return
		}
		src := int(binary.LittleEndian.Uint32(payload[1:]))
		level := binary.LittleEndian.Uint32(payload[5:])
		nw := int(binary.LittleEndian.Uint32(payload[9:]))
		if src < 0 || src >= d.p {
			return
		}
		acc := d.levelAcc(level)
		if acc.seen[src] {
			return
		}
		acc.seen[src] = true
		acc.left--
		rest := payload[13:]
		for i := 0; i < nw && (i+1)*12 <= len(rest); i++ {
			idx := binary.LittleEndian.Uint32(rest[i*12:])
			word := binary.LittleEndian.Uint64(rest[i*12+4:])
			if uint64(idx) < uint64(len(acc.bits.Words())) {
				acc.bits.OrWord(idx, word)
			}
		}
	case doKindParent:
		if len(payload) < 17 {
			return
		}
		t := graph.Vertex(binary.LittleEndian.Uint64(payload[1:]))
		pv := graph.Vertex(binary.LittleEndian.Uint64(payload[9:]))
		if i, ok := d.part.LocalIndex(t); ok && d.Parent[i] == graph.Nil {
			d.Parent[i] = pv
		}
	}
}

func (d *DO) levelAcc(level uint32) *doLevelAcc {
	acc, ok := d.pending[level]
	if !ok {
		acc = &doLevelAcc{seen: make([]bool, d.p), left: d.p, bits: core.NewBitmap(d.n)}
		d.pending[level] = acc
	}
	return acc
}

// TryAdvance performs whatever phase transition is possible — scanning and
// broadcasting this rank's contribution for the next level, or merging a
// completed level — and reports whether anything happened.
func (d *DO) TryAdvance() bool {
	if d.done || d.degLeft > 0 {
		return false
	}
	if !d.sent {
		d.scanAndSend()
		return true
	}
	acc, ok := d.pending[d.level+1]
	if !ok || acc.left > 0 {
		return false
	}
	d.merge(acc)
	return true
}

// Idle reports whether this rank has no local transition to make (waiting on
// peers, or finished).
func (d *DO) Idle() bool {
	if d.done {
		return true
	}
	if d.degLeft > 0 {
		return true // waiting on degree fragments already in flight
	}
	if !d.sent {
		return false
	}
	acc, ok := d.pending[d.level+1]
	return !ok || acc.left > 0
}

// Done reports whether the traversal has finished on this rank.
func (d *DO) Done() bool { return d.done }

// Abort marks the machine done and drops buffered state (engine Cancel).
func (d *DO) Abort() {
	d.done = true
	clear(d.pending)
}

// scanAndSend computes this rank's contribution to the next frontier from
// its locally stored row portions — pushing frontier rows top-down, or
// probing unvisited rows for a frontier neighbor bottom-up — then broadcasts
// the sparse contribution and self-merges it.
func (d *DO) scanAndSend() {
	d.contrib.Clear()
	if d.mode == modeTopDown {
		d.TopDownLevels++
		d.forLocalRows(d.frontier, false, func(i int, v graph.Vertex) {
			for _, t := range d.part.CSR.Row(i) {
				if !d.visited.Get(uint64(t)) {
					d.contrib.Set(uint64(t))
				}
			}
		})
	} else {
		d.BottomUpLevels++
		if d.hint != nil {
			// Hint the pager across the unvisited rows this scan will read so
			// the fetches overlap the scan instead of faulting one by one.
			d.forLocalRows(d.visited, true, func(i int, v graph.Vertex) {
				d.hint.PrefetchRow(i)
			})
		}
		d.forLocalRows(d.visited, true, func(i int, v graph.Vertex) {
			for _, t := range d.part.CSR.Row(i) {
				if d.frontier.Get(uint64(t)) {
					d.contrib.Set(uint64(v))
					break // one frontier neighbor suffices
				}
			}
		})
	}

	// Serialize the nonzero words and broadcast.
	buf := d.scratch[:0]
	buf = append(buf, doKindLevel)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.part.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, d.level+1)
	nwAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	var nw uint32
	for wi, w := range d.contrib.Words() {
		if w != 0 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(wi))
			buf = binary.LittleEndian.AppendUint64(buf, w)
			nw++
		}
	}
	binary.LittleEndian.PutUint32(buf[nwAt:], nw)
	d.scratch = buf
	for r := 0; r < d.p; r++ {
		if r != d.part.Rank {
			d.send(r, buf)
		}
	}

	acc := d.levelAcc(d.level + 1)
	if !acc.seen[d.part.Rank] {
		acc.seen[d.part.Rank] = true
		acc.left--
		for wi, w := range d.contrib.Words() {
			if w != 0 {
				acc.bits.OrWord(uint32(wi), w)
			}
		}
	}
	d.sent = true
}

// merge folds the completed level: the union of all contributions becomes
// the next frontier, newly visited masters get levels and parents, replica
// holders send parent candidates for split vertices, and the direction for
// the next scan is decided from the replicated edge counts.
func (d *DO) merge(acc *doLevelAcc) {
	delete(d.pending, d.level+1)
	newly := acc.bits
	// A contribution may include vertices another rank reached at an earlier
	// level only if scans raced ahead — impossible here (contributions only
	// name unvisited-at-scan-time vertices and scans run level-synchronously)
	// — but mask against visited anyway so a corrupted-but-CRC-valid word
	// cannot resurrect a finished vertex.
	for wi := range newly.Words() {
		newly.Words()[wi] &^= d.visited.Words()[wi]
	}

	var fVerts uint64
	for _, w := range newly.Words() {
		fVerts += uint64(bits.OnesCount64(w))
	}
	if fVerts == 0 {
		d.done = true
		return
	}

	d.level++
	d.prevFrontier.CopyFrom(d.frontier)
	for wi, w := range newly.Words() {
		d.visited.OrWord(uint32(wi), w)
	}
	d.frontier.CopyFrom(newly)

	// Levels for every locally held newly visited vertex (replicas too, so
	// ReachedEdges sums the same rows as the visitor-queue BFS); parents are
	// resolved against the retired frontier (the parent level) in
	// finishParents.
	d.forLocalRows(newly, false, func(i int, v graph.Vertex) {
		d.Level[i] = d.level
	})
	d.finishParents(newly)

	// Direction decision from replicated data — identical on every rank.
	fEdges := d.sumDeg(newly)
	d.uEdges -= fEdges
	switch d.mode {
	case modeTopDown:
		if fEdges > d.uEdges/Alpha {
			d.mode = modeBottomUp
		}
	case modeBottomUp:
		if fVerts < d.n/Beta {
			d.mode = modeTopDown
		}
	}
	d.sent = false
}

// finishParents assigns parents for newly visited local vertices and emits
// parent candidates from replica holders of split vertices.
func (d *DO) finishParents(newly core.Bitmap) {
	d.forLocalRows(newly, false, func(i int, v graph.Vertex) {
		if d.Parent[i] != graph.Nil {
			return
		}
		var found graph.Vertex = graph.Nil
		for _, t := range d.part.CSR.Row(i) {
			if d.prevFrontier.Get(uint64(t)) {
				found = t
				break
			}
		}
		if found == graph.Nil {
			return
		}
		if d.part.IsMaster(v) {
			d.Parent[i] = found
			return
		}
		// Replica holder of a split vertex: the master's portion may lack a
		// previous-level neighbor, so offer ours.
		buf := d.scratch[:0]
		buf = append(buf, doKindParent)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(found))
		d.scratch = buf
		d.send(d.part.Master(v), buf)
	})
}

// forLocalRows iterates the locally stored rows whose vertex's bit in bm is
// set (or clear, when invert), word-wise over the contiguous state range.
func (d *DO) forLocalRows(bm core.Bitmap, invert bool, fn func(i int, v graph.Vertex)) {
	if d.part.StateLen == 0 {
		return
	}
	start := uint64(d.part.StateStart)
	end := start + uint64(d.part.StateLen)
	words := bm.Words()
	for wi := start >> 6; wi <= (end-1)>>6; wi++ {
		w := words[wi]
		if invert {
			w = ^w
		}
		if wi == start>>6 {
			w &= ^uint64(0) << (start & 63)
		}
		if wi == (end-1)>>6 {
			w &= ^uint64(0) >> (63 - ((end - 1) & 63))
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			v := graph.Vertex(wi<<6 + uint64(b))
			fn(int(v-d.part.StateStart), v)
		}
	}
}

// RunDO executes a direction-optimizing BFS from source collectively across
// all ranks (the classic, dedicated-mailbox path; the engine drives the same
// state machine through its shared plane instead). Results are bit-identical
// to Run's: levels are BFS depths, parents lie on shortest paths.
func RunDO(r *rt.Rank, part *partition.Part, source graph.Vertex, cfg core.Config) *Result {
	sp := r.Obs().StartPhase("bfs.rundo", r.Rank())
	defer sp.End()
	topo := cfg.Topology
	if topo == nil {
		topo = mailbox.NewDirect(r.Size())
	}
	det := termination.New(r)
	var opts []mailbox.Option
	if cfg.FlushBytes > 0 {
		opts = append(opts, mailbox.WithFlushBytes(cfg.FlushBytes))
	}
	if cfg.Reliable {
		opts = append(opts, mailbox.WithReliable(), mailbox.WithRTO(cfg.RTOBase, cfg.RTOMax))
	}
	mb := mailbox.New(r, topo, det, opts...)
	d := NewDO(part, source, func(dest int, payload []byte) { mb.SendTagged(dest, 0, payload) }, nil)
	d.Start()
	idleSpins := 0
	for {
		progress := false
		for _, rec := range mb.Poll() {
			d.Handle(rec.Payload)
			progress = true
		}
		for d.TryAdvance() {
			progress = true
		}
		if progress {
			idleSpins = 0
			det.Pump(false)
			continue
		}
		mb.FlushAll()
		if det.Pump(d.Idle() && mb.Idle()) {
			b := &BFS{part: part, Level: d.Level, Parent: d.Parent}
			st := core.Stats{Mailbox: mb.Stats(), DetectorWaves: det.Waves,
				DetectorSent: det.Sent(), DetectorReceived: det.Received()}
			r.Barrier()
			return &Result{BFS: b, Stats: st}
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}
