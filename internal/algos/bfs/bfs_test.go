package bfs

import (
	"testing"

	"havoqgt/internal/algos/algotest"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// runDistributedBFS executes BFS over p ranks and returns per-vertex levels
// and parents gathered from the masters.
func runDistributedBFS(t *testing.T, edges []graph.Edge, n uint64, p int,
	source graph.Vertex, build algotest.Builder, mkCfg func(part *partition.Part) core.Config) (levels []uint32, parents []graph.Vertex) {
	t.Helper()
	gl := algotest.NewGathered(n)
	gp := algotest.NewGathered(n)
	algotest.RunOnParts(t, edges, n, p, build, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, source, mkCfg(part))
		gl.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Level[i])
		})
		gp.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			return uint64(res.Parent[i])
		})
	})
	levels = make([]uint32, n)
	parents = make([]graph.Vertex, n)
	for v := range levels {
		levels[v] = uint32(gl.Values[v])
		parents[v] = graph.Vertex(gp.Values[v])
	}
	return levels, parents
}

// checkAgainstRef verifies distributed levels equal the sequential BFS
// levels and that every parent is a legal BFS parent.
func checkAgainstRef(t *testing.T, edges []graph.Edge, n uint64, source graph.Vertex,
	levels []uint32, parents []graph.Vertex) {
	t.Helper()
	adj := ref.BuildAdj(edges, n)
	wantLevels, _ := ref.BFS(adj, source)
	for v := uint64(0); v < n; v++ {
		if levels[v] != wantLevels[v] {
			t.Fatalf("level(%d) = %d, want %d", v, levels[v], wantLevels[v])
		}
	}
	for v := uint64(0); v < n; v++ {
		switch {
		case levels[v] == Unreached:
			if parents[v] != graph.Nil {
				t.Fatalf("unreached vertex %d has parent %d", v, parents[v])
			}
		case graph.Vertex(v) == source:
			if parents[v] != source {
				t.Fatalf("source parent = %d", parents[v])
			}
		default:
			pv := parents[v]
			if wantLevels[pv] != levels[v]-1 {
				t.Fatalf("parent(%d)=%d at level %d, vertex at %d", v, pv, wantLevels[pv], levels[v])
			}
			if !adj.HasEdge(pv, graph.Vertex(v)) {
				t.Fatalf("parent(%d)=%d but no edge", v, pv)
			}
		}
	}
}

func defaultCfg(part *partition.Part) core.Config { return core.Config{} }

func randomGraph(n uint64, m int, seed uint64) []graph.Edge {
	rng := xrand.New(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.Vertex(rng.Uint64n(n)), Dst: graph.Vertex(rng.Uint64n(n))}
	}
	return graph.Undirect(edges)
}

func TestBFSMatchesReferenceAcrossRankCounts(t *testing.T) {
	edges := randomGraph(64, 160, 1)
	for _, p := range []int{1, 2, 3, 4, 8} {
		levels, parents := runDistributedBFS(t, edges, 64, p, 3, partition.BuildEdgeList, defaultCfg)
		checkAgainstRef(t, edges, 64, 3, levels, parents)
	}
}

func TestBFSOnRMAT(t *testing.T) {
	g := generators.NewGraph500(9, 7)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices()
	levels, parents := runDistributedBFS(t, edges, n, 4, 0, partition.BuildEdgeList, defaultCfg)
	checkAgainstRef(t, edges, n, 0, levels, parents)
}

func TestBFSOnSmallWorldHighDiameter(t *testing.T) {
	g := generators.NewSmallWorld(1<<9, 4, 0.01, 5)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices
	levels, parents := runDistributedBFS(t, edges, n, 4, 9, partition.BuildEdgeList, defaultCfg)
	checkAgainstRef(t, edges, n, 9, levels, parents)
}

func TestBFSWithRoutedTopologies(t *testing.T) {
	edges := randomGraph(128, 512, 2)
	for _, topo := range []string{"1d", "2d", "3d"} {
		p := 8
		mk := func(part *partition.Part) core.Config {
			tp, err := mailbox.ByName(topo, p)
			if err != nil {
				t.Fatal(err)
			}
			return core.Config{Topology: tp}
		}
		levels, parents := runDistributedBFS(t, edges, 128, p, 0, partition.BuildEdgeList, mk)
		checkAgainstRef(t, edges, 128, 0, levels, parents)
	}
}

func TestBFSWithGhosts(t *testing.T) {
	// Hub-heavy graph where ghosts actually filter.
	g := generators.NewPA(1<<9, 4, 0, 3)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices
	mk := func(part *partition.Part) core.Config {
		return core.Config{Ghosts: core.BuildGhostTable(part, 64)}
	}
	levels, parents := runDistributedBFS(t, edges, n, 4, 1, partition.BuildEdgeList, mk)
	checkAgainstRef(t, edges, n, 1, levels, parents)
}

func TestBFSGhostsActuallyFilter(t *testing.T) {
	g := generators.NewPA(1<<10, 8, 0, 13)
	edges := graph.Undirect(g.Generate())
	n := g.NumVertices
	counts := make([]uint64, 4)
	algotest.RunOnParts(t, edges, n, 4, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		cfg := core.Config{Ghosts: core.BuildGhostTable(part, core.DefaultGhostsPerPartition)}
		res := Run(r, part, 1, cfg)
		counts[r.Rank()] = res.Stats.GhostFiltered
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("ghost filter never fired on a hub-heavy PA graph")
	}
}

func TestBFSOn1DPartition(t *testing.T) {
	edges := randomGraph(64, 256, 4)
	levels, parents := runDistributedBFS(t, edges, 64, 4, 5, partition.Build1D, defaultCfg)
	checkAgainstRef(t, edges, 64, 5, levels, parents)
}

func TestBFSDisconnectedGraph(t *testing.T) {
	// Two components; traversal from one must leave the other unreached.
	edges := graph.Undirect([]graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7}})
	levels, parents := runDistributedBFS(t, edges, 8, 3, 0, partition.BuildEdgeList, defaultCfg)
	checkAgainstRef(t, edges, 8, 0, levels, parents)
	if levels[5] != Unreached || levels[3] != Unreached {
		t.Fatal("unreachable vertices got levels")
	}
}

func TestBFSSingleVertexSource(t *testing.T) {
	// Source with no edges: only itself reached.
	edges := graph.Undirect([]graph.Edge{{Src: 1, Dst: 2}})
	levels, _ := runDistributedBFS(t, edges, 4, 2, 0, partition.BuildEdgeList, defaultCfg)
	if levels[0] != 0 || levels[1] != Unreached {
		t.Fatalf("levels = %v", levels)
	}
}

func TestBFSLocalityOrderAblation(t *testing.T) {
	edges := randomGraph(128, 512, 8)
	mk := func(part *partition.Part) core.Config {
		return core.Config{DisableLocalityOrder: true}
	}
	levels, parents := runDistributedBFS(t, edges, 128, 4, 0, partition.BuildEdgeList, mk)
	checkAgainstRef(t, edges, 128, 0, levels, parents)
}

func TestBFSStatsAccounting(t *testing.T) {
	edges := randomGraph(64, 256, 6)
	stats := make([]core.Stats, 4)
	reached := algotest.NewGathered(64)
	algotest.RunOnParts(t, edges, 64, 4, partition.BuildEdgeList, func(r *rt.Rank, part *partition.Part) {
		res := Run(r, part, 0, core.Config{})
		stats[r.Rank()] = res.Stats
		reached.Set(part, func(v graph.Vertex) uint64 {
			i, _ := part.LocalIndex(v)
			if res.Level[i] != Unreached {
				return 1
			}
			return 0
		})
	})
	var executed, queued uint64
	for _, s := range stats {
		executed += s.Executed
		queued += s.Queued
	}
	if executed != queued {
		t.Fatalf("executed %d != queued %d after quiescence", executed, queued)
	}
	var reachedCount uint64
	for _, x := range reached.Values {
		reachedCount += x
	}
	if executed < reachedCount {
		t.Fatalf("executed %d visitors but reached %d vertices", executed, reachedCount)
	}
}

func TestVisitorCodecRoundTrip(t *testing.T) {
	b := &BFS{}
	v := Visitor{V: 123456789, Length: 42, Parent: 987654321}
	buf := b.Encode(v, nil)
	if len(buf) != wireBytes {
		t.Fatalf("wire size %d", len(buf))
	}
	if got := b.Decode(buf); got != v {
		t.Fatalf("round trip %+v", got)
	}
}
