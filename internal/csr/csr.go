// Package csr implements compressed-sparse-row adjacency storage, the
// underlying storage of each edge list partition in the paper (§III-A1).
// Row offsets (proportional to vertices) always live in memory; the target
// array (proportional to edges) lives behind a TargetStore so it can be kept
// in memory or in simulated NVRAM through the user-space page cache — the
// semi-external model of §VIII-A.
package csr

import (
	"fmt"
	"sort"

	"havoqgt/internal/graph"
)

// TargetStore is the backing storage for the CSR target array.
type TargetStore interface {
	// Read returns targets[lo:hi]. The returned slice is valid until the
	// next Read on the same store; callers must not retain it.
	Read(lo, hi uint64) []graph.Vertex
	// Len returns the total number of stored targets.
	Len() uint64
	// Close releases resources.
	Close() error
}

// MemTargets is an in-memory TargetStore (the DRAM configuration).
type MemTargets []graph.Vertex

func (m MemTargets) Read(lo, hi uint64) []graph.Vertex { return m[lo:hi] }
func (m MemTargets) Len() uint64                       { return uint64(len(m)) }
func (m MemTargets) Close() error                      { return nil }

// Matrix is one partition's local adjacency in CSR form. Row i holds the
// local portion of the adjacency list of vertex (base + i); rows are sorted
// by target, which HasTarget exploits.
type Matrix struct {
	offsets []uint64 // len = rows+1
	targets TargetStore
}

// New assembles a matrix from row offsets and a target store. offsets must
// be non-decreasing with offsets[len-1] == targets.Len().
func New(offsets []uint64, targets TargetStore) (*Matrix, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("csr: offsets must have at least one entry")
	}
	if offsets[len(offsets)-1] != targets.Len() {
		return nil, fmt.Errorf("csr: offsets end at %d but store holds %d targets",
			offsets[len(offsets)-1], targets.Len())
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("csr: offsets not monotone at row %d", i-1)
		}
	}
	return &Matrix{offsets: offsets, targets: targets}, nil
}

// FromSortedEdges builds a matrix over `rows` rows from edges sorted by
// (Src, Dst), where edge sources are mapped to rows by src - base. Every
// edge's source must fall within [base, base+rows).
func FromSortedEdges(edges []graph.Edge, base graph.Vertex, rows int) (*Matrix, error) {
	offsets := make([]uint64, rows+1)
	targets := make(MemTargets, len(edges))
	for i, e := range edges {
		if e.Src < base || uint64(e.Src-base) >= uint64(rows) {
			return nil, fmt.Errorf("csr: edge %v outside row range [%d,%d)", e, base, uint64(base)+uint64(rows))
		}
		if i > 0 && graph.CompareEdges(edges[i-1], e) > 0 {
			return nil, fmt.Errorf("csr: edges not sorted at index %d", i)
		}
		offsets[e.Src-base+1]++
		targets[i] = e.Dst
	}
	for i := 1; i <= rows; i++ {
		offsets[i] += offsets[i-1]
	}
	return &Matrix{offsets: offsets, targets: targets}, nil
}

// NumRows returns the number of rows (local vertex range length).
func (m *Matrix) NumRows() int { return len(m.offsets) - 1 }

// NumEdges returns the number of locally stored targets.
func (m *Matrix) NumEdges() uint64 { return m.offsets[len(m.offsets)-1] }

// Degree returns the local degree of row i.
func (m *Matrix) Degree(i int) uint64 { return m.offsets[i+1] - m.offsets[i] }

// Row returns the targets of row i. The slice is valid until the next Row or
// HasTarget call (external stores reuse a read buffer).
func (m *Matrix) Row(i int) []graph.Vertex {
	return m.targets.Read(m.offsets[i], m.offsets[i+1])
}

// RowSpan returns the half-open target-index range [lo, hi) of row i without
// reading any targets. Out-of-core pagers use it to map a row onto the byte
// range (and so the device pages) its adjacency occupies.
func (m *Matrix) RowSpan(i int) (lo, hi uint64) {
	return m.offsets[i], m.offsets[i+1]
}

// HasTarget reports whether row i contains target v, by binary search (rows
// are sorted by target). Duplicate edges are tolerated.
func (m *Matrix) HasTarget(i int, v graph.Vertex) bool {
	row := m.Row(i)
	j := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	return j < len(row) && row[j] == v
}

// Targets exposes the backing store (for cache statistics).
func (m *Matrix) Targets() TargetStore { return m.targets }

// ReplaceTargets swaps the backing store, e.g. to move the already-built
// target array from memory into simulated NVRAM. The new store must hold the
// same number of targets.
func (m *Matrix) ReplaceTargets(s TargetStore) error {
	if s.Len() != m.targets.Len() {
		return fmt.Errorf("csr: replacement store holds %d targets, want %d", s.Len(), m.targets.Len())
	}
	m.targets = s
	return nil
}

// WithTargets returns a view of the matrix sharing its offsets but reading
// targets through a different store — used to give each thread of a
// multithreaded traversal its own read buffers over one shared page cache.
func (m *Matrix) WithTargets(s TargetStore) (*Matrix, error) {
	if s.Len() != m.targets.Len() {
		return nil, fmt.Errorf("csr: view store holds %d targets, want %d", s.Len(), m.targets.Len())
	}
	return &Matrix{offsets: m.offsets, targets: s}, nil
}

// Close closes the backing store.
func (m *Matrix) Close() error { return m.targets.Close() }
