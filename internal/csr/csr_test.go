package csr

import (
	"testing"

	"havoqgt/internal/graph"
)

func mustBuild(t *testing.T, edges []graph.Edge, base graph.Vertex, rows int) *Matrix {
	t.Helper()
	m, err := FromSortedEdges(edges, base, rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromSortedEdges(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 2, Dst: 0}, {Src: 2, Dst: 2}, {Src: 3, Dst: 1}}
	m := mustBuild(t, edges, 0, 4)
	if m.NumRows() != 4 || m.NumEdges() != 5 {
		t.Fatalf("rows=%d edges=%d", m.NumRows(), m.NumEdges())
	}
	wantDeg := []uint64{2, 0, 2, 1}
	for i, w := range wantDeg {
		if m.Degree(i) != w {
			t.Errorf("degree(%d) = %d, want %d", i, m.Degree(i), w)
		}
	}
	row0 := m.Row(0)
	if len(row0) != 2 || row0[0] != 1 || row0[1] != 3 {
		t.Errorf("row 0 = %v", row0)
	}
	if len(m.Row(1)) != 0 {
		t.Errorf("row 1 should be empty")
	}
}

func TestFromSortedEdgesWithBase(t *testing.T) {
	edges := []graph.Edge{{Src: 10, Dst: 5}, {Src: 11, Dst: 0}, {Src: 11, Dst: 9}}
	m := mustBuild(t, edges, 10, 3)
	if m.Degree(0) != 1 || m.Degree(1) != 2 || m.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d %d", m.Degree(0), m.Degree(1), m.Degree(2))
	}
}

func TestFromSortedEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromSortedEdges([]graph.Edge{{Src: 5, Dst: 0}}, 0, 3); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := FromSortedEdges([]graph.Edge{{Src: 0, Dst: 0}}, 1, 3); err == nil {
		t.Fatal("source below base accepted")
	}
}

func TestFromSortedEdgesRejectsUnsorted(t *testing.T) {
	if _, err := FromSortedEdges([]graph.Edge{{Src: 1, Dst: 0}, {Src: 0, Dst: 0}}, 0, 2); err == nil {
		t.Fatal("unsorted edges accepted")
	}
}

func TestHasTarget(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 5}, {Src: 0, Dst: 9}, {Src: 1, Dst: 1}}
	m := mustBuild(t, edges, 0, 2)
	for _, v := range []graph.Vertex{2, 5, 9} {
		if !m.HasTarget(0, v) {
			t.Errorf("HasTarget(0, %d) = false", v)
		}
	}
	for _, v := range []graph.Vertex{0, 1, 3, 10} {
		if m.HasTarget(0, v) {
			t.Errorf("HasTarget(0, %d) = true", v)
		}
	}
	if !m.HasTarget(1, 1) || m.HasTarget(1, 2) {
		t.Error("row 1 membership wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, MemTargets{}); err == nil {
		t.Error("empty offsets accepted")
	}
	if _, err := New([]uint64{0, 2}, MemTargets{1}); err == nil {
		t.Error("offset/store mismatch accepted")
	}
	if _, err := New([]uint64{0, 2, 1}, MemTargets{1}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
}

func TestReplaceTargets(t *testing.T) {
	m := mustBuild(t, []graph.Edge{{Src: 0, Dst: 7}}, 0, 1)
	if err := m.ReplaceTargets(MemTargets{8}); err != nil {
		t.Fatal(err)
	}
	if got := m.Row(0)[0]; got != 8 {
		t.Fatalf("after replace, row = %d", got)
	}
	if err := m.ReplaceTargets(MemTargets{1, 2}); err == nil {
		t.Fatal("length-mismatched store accepted")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := mustBuild(t, nil, 0, 0)
	if m.NumRows() != 0 || m.NumEdges() != 0 {
		t.Fatal("empty matrix misreports size")
	}
}
