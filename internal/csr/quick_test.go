package csr

import (
	"slices"
	"testing"
	"testing/quick"

	"havoqgt/internal/graph"
)

// TestQuickCSRMatchesBruteForce: for any random edge list, the CSR rows must
// equal brute-force grouping by source, and HasTarget must equal a linear
// membership scan.
func TestQuickCSRMatchesBruteForce(t *testing.T) {
	f := func(raw []uint16, rowsSel uint8) bool {
		rows := int(rowsSel)%32 + 1
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{
				Src: graph.Vertex(int(raw[i]) % rows),
				Dst: graph.Vertex(raw[i+1] % 64),
			})
		}
		graph.SortEdges(edges)
		m, err := FromSortedEdges(edges, 0, rows)
		if err != nil {
			return false
		}
		want := make([][]graph.Vertex, rows)
		for _, e := range edges {
			want[e.Src] = append(want[e.Src], e.Dst)
		}
		for r := 0; r < rows; r++ {
			got := m.Row(r)
			if !slices.Equal(got, want[r]) {
				return false
			}
			for v := graph.Vertex(0); v < 64; v++ {
				if m.HasTarget(r, v) != slices.Contains(want[r], v) {
					return false
				}
			}
		}
		return m.NumEdges() == uint64(len(edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
