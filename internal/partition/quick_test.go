package partition

import (
	"testing"
	"testing/quick"

	"havoqgt/internal/graph"
)

// TestQuickOwnerTableMatchesLinearScan: Master must equal the first rank
// whose (start, next-start) range contains the vertex, for any monotone
// boundary table.
func TestQuickOwnerTableMatchesLinearScan(t *testing.T) {
	f := func(deltas []uint8, n uint16) bool {
		if len(deltas) == 0 {
			return true
		}
		if len(deltas) > 16 {
			deltas = deltas[:16]
		}
		start := make([]uint64, 0, len(deltas)+1)
		start = append(start, 0)
		for _, d := range deltas {
			start = append(start, start[len(start)-1]+uint64(d)%8)
		}
		total := start[len(start)-1] + uint64(n)%64 + 1
		start[len(start)-1] = total
		ot, err := NewOwnerTable(start)
		if err != nil {
			return false
		}
		for v := uint64(0); v < total; v++ {
			want := -1
			for r := 0; r < ot.P(); r++ {
				lo, hi := ot.MasterRange(r)
				if v >= lo && v < hi {
					want = r
					break
				}
			}
			if got := ot.Master(graph.Vertex(v)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickImbalanceBounds: imbalance is always >= 1 (for nonempty counts
// with any edges) and equals 1 exactly when all counts are equal.
func TestQuickImbalanceBounds(t *testing.T) {
	f := func(counts []uint16) bool {
		if len(counts) == 0 {
			return true
		}
		cs := make([]uint64, len(counts))
		var sum uint64
		for i, c := range counts {
			cs[i] = uint64(c)
			sum += uint64(c)
		}
		imb := Imbalance(cs)
		if sum == 0 {
			return imb == 1
		}
		if imb < 0.999999 {
			return false
		}
		allEqual := true
		for _, c := range cs {
			if c != cs[0] {
				allEqual = false
			}
		}
		if allEqual && (imb < 0.999999 || imb > 1.000001) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgeCodecRoundTrip: any edge list survives the wire codec.
func TestQuickEdgeCodecRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{Src: graph.Vertex(raw[i]), Dst: graph.Vertex(raw[i+1])})
		}
		got := decodeEdgesInto(nil, encodeEdges(edges))
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
