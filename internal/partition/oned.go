package partition

import (
	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/rt"
)

// Build1D collectively builds the traditional 1D block partition: vertex v
// and its entire adjacency list live on rank v / ceil(n/p). This is the
// baseline of Figure 12; a single hub's adjacency list can exceed the average
// edge count per partition, producing the data imbalance of Figure 2.
//
// The resulting Part uses the same traversal machinery as the edge-list
// partition — it simply never splits an adjacency list (HasForward is always
// false) and its ownership table is the block mapping.
func Build1D(r *rt.Rank, local []graph.Edge, numVertices uint64) (*Part, error) {
	p := r.Size()
	block := (numVertices + uint64(p) - 1) / uint64(p)
	if block == 0 {
		block = 1
	}
	start := make([]uint64, p+1)
	for i := 0; i <= p; i++ {
		start[i] = min(uint64(i)*block, numVertices)
	}
	owners, err := NewOwnerTable(start)
	if err != nil {
		return nil, err
	}

	// Route every edge to its source's owner.
	buckets := make([][]graph.Edge, p)
	for _, e := range local {
		o := owners.Master(e.Src)
		buckets[o] = append(buckets[o], e)
	}
	out := make([][]byte, p)
	for i := range buckets {
		out[i] = encodeEdges(buckets[i])
	}
	in := r.AllToAllv(out)
	mine := make([]graph.Edge, 0, len(local))
	for _, buf := range in {
		mine = decodeEdgesInto(mine, buf)
	}
	graph.SortEdges(mine)

	part := &Part{
		Rank:           r.Rank(),
		P:              p,
		NumVertices:    numVertices,
		Owners:         owners,
		StateStart:     graph.Vertex(start[r.Rank()]),
		StateLen:       int(start[r.Rank()+1] - start[r.Rank()]),
		BoundaryDegree: map[graph.Vertex]uint64{},
	}
	part.GlobalEdges = r.AllReduceU64(uint64(len(mine)), rt.Sum)
	m, err := csr.FromSortedEdges(mine, part.StateStart, part.StateLen)
	if err != nil {
		return nil, err
	}
	part.CSR = m
	return part, nil
}
