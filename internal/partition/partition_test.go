package partition

import (
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// figure3Edges is the exact example of Figure 3: 8 vertices, 16 edges.
func figure3Edges() []graph.Edge {
	src := []graph.Vertex{0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 4, 5, 5, 6, 7, 7}
	dst := []graph.Vertex{1, 0, 2, 1, 3, 4, 5, 6, 7, 2, 2, 2, 7, 2, 2, 5}
	edges := make([]graph.Edge, len(src))
	for i := range src {
		edges[i] = graph.Edge{Src: src[i], Dst: dst[i]}
	}
	return edges
}

// buildCollective runs BuildEdgeList on p ranks over the given edges
// (scattered round-robin) and returns each rank's Part.
func buildCollective(t *testing.T, edges []graph.Edge, n uint64, p int) []*Part {
	t.Helper()
	parts := make([]*Part, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	return parts
}

func TestPaperFigure3Example(t *testing.T) {
	parts := buildCollective(t, figure3Edges(), 8, 4)

	// Equal edge counts: 16 edges over 4 partitions.
	for r, p := range parts {
		if p.LocalEdges() != 4 {
			t.Errorf("partition %d holds %d edges, want 4", r, p.LocalEdges())
		}
	}
	// min_owner(2) = 0 and min_owner(5) = 2, as in the figure.
	if got := parts[0].Master(2); got != 0 {
		t.Errorf("min_owner(2) = %d, want 0", got)
	}
	if got := parts[0].Master(5); got != 2 {
		t.Errorf("min_owner(5) = %d, want 2", got)
	}
	// max_owner(2) = 2: partitions 0 and 1 forward vertex 2 down the chain,
	// partition 2 does not.
	if to, ok := parts[0].ShouldForward(2); !ok || to != 1 {
		t.Errorf("partition 0 forward(2) = (%d,%v), want (1,true)", to, ok)
	}
	if to, ok := parts[1].ShouldForward(2); !ok || to != 2 {
		t.Errorf("partition 1 forward(2) = (%d,%v), want (2,true)", to, ok)
	}
	if _, ok := parts[2].ShouldForward(2); ok {
		t.Error("partition 2 must not forward vertex 2 (it is max_owner)")
	}
	// max_owner(5) = 3.
	if to, ok := parts[2].ShouldForward(5); !ok || to != 3 {
		t.Errorf("partition 2 forward(5) = (%d,%v), want (3,true)", to, ok)
	}
	if _, ok := parts[3].ShouldForward(5); ok {
		t.Error("partition 3 must not forward vertex 5")
	}
	// Global degrees across the split: deg(2)=6, deg(5)=2.
	for r := 0; r <= 2; r++ {
		if d := parts[r].GlobalDegree(2); d != 6 {
			t.Errorf("partition %d GlobalDegree(2) = %d, want 6", r, d)
		}
	}
	if d := parts[2].GlobalDegree(5); d != 2 {
		t.Errorf("GlobalDegree(5) = %d, want 2", d)
	}
	if d := parts[3].GlobalDegree(5); d != 2 {
		t.Errorf("replica GlobalDegree(5) = %d, want 2", d)
	}
}

func TestOwnerTable(t *testing.T) {
	ot, err := NewOwnerTable([]uint64{0, 3, 3, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	wantOwners := []int{0, 0, 0, 2, 2, 2, 3, 3}
	for v, want := range wantOwners {
		if got := ot.Master(graph.Vertex(v)); got != want {
			t.Errorf("Master(%d) = %d, want %d", v, got, want)
		}
	}
	if ot.P() != 4 || ot.NumVertices() != 8 {
		t.Fatal("table metadata wrong")
	}
}

func TestOwnerTableValidation(t *testing.T) {
	if _, err := NewOwnerTable([]uint64{1, 2}); err == nil {
		t.Error("table not starting at 0 accepted")
	}
	if _, err := NewOwnerTable([]uint64{0, 5, 3}); err == nil {
		t.Error("non-monotone table accepted")
	}
	if _, err := NewOwnerTable([]uint64{0}); err == nil {
		t.Error("single-entry table accepted")
	}
}

func TestOwnerTableOutOfRangePanics(t *testing.T) {
	ot, _ := NewOwnerTable([]uint64{0, 4})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Master did not panic")
		}
	}()
	ot.Master(4)
}

// validateEdgeListBuild checks the structural invariants of an edge-list
// build against the original edge list.
func validateEdgeListBuild(t *testing.T, edges []graph.Edge, n uint64, parts []*Part) {
	t.Helper()
	p := len(parts)

	// (1) Balance: every rank holds |E|/p ± 1 edges.
	var total uint64
	for _, part := range parts {
		total += part.LocalEdges()
	}
	if total != uint64(len(edges)) {
		t.Fatalf("edges not conserved: %d stored, %d input", total, len(edges))
	}
	lo, hi := total/uint64(p), total/uint64(p)+1
	for r, part := range parts {
		if c := part.LocalEdges(); c < lo || c > hi {
			t.Errorf("rank %d holds %d edges, want %d..%d", r, c, lo, hi)
		}
	}

	// (2) Every input edge is stored exactly once, counting multiplicity.
	want := map[graph.Edge]int{}
	for _, e := range edges {
		want[e]++
	}
	for _, part := range parts {
		m := part.CSR
		for row := 0; row < m.NumRows(); row++ {
			src := part.Vertex(row)
			for _, dst := range m.Row(row) {
				want[graph.Edge{Src: src, Dst: dst}]--
			}
		}
	}
	for e, c := range want {
		if c != 0 {
			t.Fatalf("edge %v stored with multiplicity error %d", e, c)
		}
	}

	// (3) Every vertex has exactly one master, and that master has state.
	for v := uint64(0); v < n; v++ {
		owner := parts[0].Master(graph.Vertex(v))
		for r := 1; r < p; r++ {
			if parts[r].Master(graph.Vertex(v)) != owner {
				t.Fatalf("owner table disagrees across ranks for vertex %d", v)
			}
		}
		if _, ok := parts[owner].LocalIndex(graph.Vertex(v)); !ok {
			t.Fatalf("master %d has no state for vertex %d", owner, v)
		}
	}

	// (4) Global degrees: GlobalDegree on the master equals the true
	// out-degree.
	deg := graph.OutDegrees(edges, n)
	for v := uint64(0); v < n; v++ {
		owner := parts[0].Master(graph.Vertex(v))
		if got := parts[owner].GlobalDegree(graph.Vertex(v)); got != uint64(deg[v]) {
			t.Fatalf("GlobalDegree(%d) = %d, want %d", v, got, deg[v])
		}
	}

	// (5) Forward chains: following ShouldForward from the master visits
	// ranks whose local fragments sum to the full adjacency list.
	for v := uint64(0); v < n; v++ {
		owner := parts[0].Master(graph.Vertex(v))
		var sum uint64
		r := owner
		for hops := 0; ; hops++ {
			if hops > p {
				t.Fatalf("forward chain for vertex %d does not terminate", v)
			}
			if i, ok := parts[r].LocalIndex(graph.Vertex(v)); ok {
				sum += parts[r].CSR.Degree(i)
			}
			next, ok := parts[r].ShouldForward(graph.Vertex(v))
			if !ok {
				break
			}
			if next <= r {
				t.Fatalf("forward chain for vertex %d goes backwards (%d->%d)", v, r, next)
			}
			r = next
		}
		if sum != uint64(deg[v]) {
			t.Fatalf("vertex %d: fragments along chain sum to %d, want %d", v, sum, deg[v])
		}
	}
}

func TestBuildEdgeListRandomGraphs(t *testing.T) {
	rng := xrand.New(77)
	for _, n := range []uint64{1, 2, 16, 64} {
		for _, p := range []int{1, 2, 3, 4, 8} {
			numEdges := int(n) * 4
			edges := make([]graph.Edge, numEdges)
			for i := range edges {
				edges[i] = graph.Edge{
					Src: graph.Vertex(rng.Uint64n(n)),
					Dst: graph.Vertex(rng.Uint64n(n)),
				}
			}
			parts := buildCollective(t, edges, n, p)
			validateEdgeListBuild(t, edges, n, parts)
		}
	}
}

func TestBuildEdgeListHubGraph(t *testing.T) {
	// A single dominant hub: vertex 0 has 1000 out-edges, everyone else 1.
	var edges []graph.Edge
	n := uint64(64)
	for i := 0; i < 1000; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.Vertex(uint64(i) % n)})
	}
	for v := uint64(1); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.Vertex(v), Dst: 0})
	}
	parts := buildCollective(t, edges, n, 8)
	validateEdgeListBuild(t, edges, n, parts)
	// The hub's adjacency must actually span multiple partitions.
	chain := 1
	r := parts[0].Master(0)
	for {
		next, ok := parts[r].ShouldForward(0)
		if !ok {
			break
		}
		r = next
		chain++
	}
	if chain < 4 {
		t.Fatalf("1000-edge hub spans only %d of 8 partitions", chain)
	}
}

func TestBuildEdgeListEmptyAndTinyInputs(t *testing.T) {
	parts := buildCollective(t, nil, 8, 4)
	for _, p := range parts {
		if p.LocalEdges() != 0 {
			t.Fatal("empty graph stored edges")
		}
	}
	// Each vertex must still have a master with state (for vertex-state
	// algorithms on edgeless graphs).
	for v := uint64(0); v < 8; v++ {
		owner := parts[0].Master(graph.Vertex(v))
		if _, ok := parts[owner].LocalIndex(graph.Vertex(v)); !ok {
			t.Fatalf("isolated vertex %d has no state anywhere", v)
		}
	}

	parts = buildCollective(t, []graph.Edge{{Src: 3, Dst: 5}}, 8, 4)
	validateEdgeListBuild(t, []graph.Edge{{Src: 3, Dst: 5}}, 8, parts)
}

func TestBuild1D(t *testing.T) {
	edges := figure3Edges()
	p := 4
	parts := make([]*Part, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range edges {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := Build1D(r, local, 8)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	// Block ownership: 2 vertices per rank.
	for v := uint64(0); v < 8; v++ {
		if got := parts[0].Master(graph.Vertex(v)); got != int(v/2) {
			t.Errorf("1D Master(%d) = %d, want %d", v, got, v/2)
		}
	}
	// Whole adjacency lists are local: vertex 2's 6 edges all on rank 1.
	if i, ok := parts[1].LocalIndex(2); !ok || parts[1].CSR.Degree(i) != 6 {
		t.Error("1D did not keep vertex 2's full adjacency on its owner")
	}
	// Never forwards.
	for _, part := range parts {
		if part.HasForward {
			t.Error("1D partition claims forwarding")
		}
	}
	// Edges conserved.
	var total uint64
	for _, part := range parts {
		total += part.LocalEdges()
	}
	if total != uint64(len(edges)) {
		t.Fatalf("1D stored %d edges, want %d", total, len(edges))
	}
}

func TestImbalanceMetric(t *testing.T) {
	if got := Imbalance([]uint64{4, 4, 4, 4}); got != 1 {
		t.Errorf("balanced imbalance = %v", got)
	}
	if got := Imbalance([]uint64{8, 0, 0, 0}); got != 4 {
		t.Errorf("worst-case imbalance = %v, want 4", got)
	}
	if got := Imbalance(nil); got != 1 {
		t.Errorf("empty imbalance = %v", got)
	}
	if got := Imbalance([]uint64{0, 0}); got != 1 {
		t.Errorf("all-zero imbalance = %v", got)
	}
}

func TestPartitioningImbalanceOrdering(t *testing.T) {
	// On a hub-heavy graph: 1D imbalance >> 2D imbalance, and edge-list is
	// perfectly balanced — the relationship of Figure 2.
	var edges []graph.Edge
	n := uint64(1 << 12)
	hubDeg := 4000
	for i := 0; i < hubDeg; i++ {
		edges = append(edges, graph.Edge{Src: 7, Dst: graph.Vertex(uint64(i) % n)})
	}
	rng := xrand.New(5)
	for i := 0; i < 4096; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(n)),
			Dst: graph.Vertex(rng.Uint64n(n)),
		})
	}
	p := 16
	i1 := Imbalance(OneDEdgeCounts(edges, n, p))
	i2 := Imbalance(TwoDEdgeCounts(edges, n, p))
	iel := Imbalance(EdgeListEdgeCounts(uint64(len(edges)), p))
	if !(i1 > 2*i2) {
		t.Errorf("1D imbalance %v not clearly worse than 2D %v", i1, i2)
	}
	if iel > 1.01 {
		t.Errorf("edge-list imbalance %v, want ~1", iel)
	}
}

func TestTwoDEdgeCountsCoverAllEdges(t *testing.T) {
	edges := figure3Edges()
	for _, p := range []int{1, 4, 6, 9, 16} {
		counts := TwoDEdgeCounts(edges, 8, p)
		var sum uint64
		for _, c := range counts {
			sum += c
		}
		if sum != uint64(len(edges)) {
			t.Errorf("p=%d: 2D counts sum to %d, want %d", p, sum, len(edges))
		}
	}
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	edges := figure3Edges()
	got := decodeEdgesInto(nil, encodeEdges(edges))
	if len(got) != len(edges) {
		t.Fatalf("round trip length %d, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d round-tripped to %v", i, got[i])
		}
	}
}

func TestBuildEdgeListSimple(t *testing.T) {
	// Duplicates and self loops scattered across ranks must be removed
	// globally.
	raw := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		{Src: 2, Dst: 2}, // self loop
		{Src: 1, Dst: 0}, {Src: 3, Dst: 4}, {Src: 3, Dst: 4},
	}
	p := 3
	parts := make([]*Part, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range raw {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := BuildEdgeListSimple(r, local, 8)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	var total uint64
	stored := map[graph.Edge]int{}
	for _, part := range parts {
		total += part.LocalEdges()
		for row := 0; row < part.CSR.NumRows(); row++ {
			src := part.Vertex(row)
			for _, dst := range part.CSR.Row(row) {
				stored[graph.Edge{Src: src, Dst: dst}]++
			}
		}
	}
	if total != 3 {
		t.Fatalf("simplified build stored %d edges, want 3", total)
	}
	for _, e := range []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 3, Dst: 4}} {
		if stored[e] != 1 {
			t.Fatalf("edge %v stored %d times", e, stored[e])
		}
	}
	if stored[graph.Edge{Src: 2, Dst: 2}] != 0 {
		t.Fatal("self loop survived simplification")
	}
}

func TestBuildEdgeListSimpleMatchesGraphSimplify(t *testing.T) {
	rng := xrand.New(31)
	var raw []graph.Edge
	for i := 0; i < 600; i++ {
		raw = append(raw, graph.Edge{
			Src: graph.Vertex(rng.Uint64n(32)),
			Dst: graph.Vertex(rng.Uint64n(32)),
		})
	}
	want := graph.Simplify(append([]graph.Edge(nil), raw...))
	p := 4
	parts := make([]*Part, p)
	m := rt.NewMachine(p)
	m.Run(func(r *rt.Rank) {
		var local []graph.Edge
		for i, e := range raw {
			if i%p == r.Rank() {
				local = append(local, e)
			}
		}
		part, err := BuildEdgeListSimple(r, local, 32)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	var got []graph.Edge
	for _, part := range parts {
		for row := 0; row < part.CSR.NumRows(); row++ {
			src := part.Vertex(row)
			for _, dst := range part.CSR.Row(row) {
				got = append(got, graph.Edge{Src: src, Dst: dst})
			}
		}
	}
	graph.SortEdges(got)
	if len(got) != len(want) {
		t.Fatalf("simplified distributed build has %d edges, sequential %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %v vs %v", i, got[i], want[i])
		}
	}
}
