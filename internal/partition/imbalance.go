package partition

import (
	"math"

	"havoqgt/internal/graph"
)

// Imbalance returns max/mean of the per-partition edge counts — the metric
// of Figure 2 ("imbalance computed for the distribution of edges per
// partition"). 1.0 is perfect balance. Returns 1 for empty input.
func Imbalance(counts []uint64) float64 {
	if len(counts) == 0 {
		return 1
	}
	var sum, mx uint64
	for _, c := range counts {
		sum += c
		if c > mx {
			mx = c
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(counts))
	return float64(mx) / mean
}

// OneDEdgeCounts models 1D block partitioning: vertex v and its whole
// adjacency list go to rank v / ceil(n/p). Returns edges per partition.
func OneDEdgeCounts(edges []graph.Edge, n uint64, p int) []uint64 {
	block := (n + uint64(p) - 1) / uint64(p)
	if block == 0 {
		block = 1
	}
	counts := make([]uint64, p)
	for _, e := range edges {
		counts[min(uint64(e.Src)/block, uint64(p-1))]++
	}
	return counts
}

// TwoDEdgeCounts models 2D block partitioning: the adjacency matrix is cut
// into an R×C processor grid (R·C = p, near-square) and edge (s, d) goes to
// block (sRow, dCol). A hub's adjacency list spreads over a whole processor
// row, i.e. O(√p) partitions.
func TwoDEdgeCounts(edges []graph.Edge, n uint64, p int) []uint64 {
	c := int(math.Ceil(math.Sqrt(float64(p))))
	for p%c != 0 { // choose the factorization closest to square
		c++
	}
	r := p / c
	rowBlock := (n + uint64(r) - 1) / uint64(r)
	colBlock := (n + uint64(c) - 1) / uint64(c)
	if rowBlock == 0 {
		rowBlock = 1
	}
	if colBlock == 0 {
		colBlock = 1
	}
	counts := make([]uint64, p)
	for _, e := range edges {
		row := min(uint64(e.Src)/rowBlock, uint64(r-1))
		col := min(uint64(e.Dst)/colBlock, uint64(c-1))
		counts[row*uint64(c)+col]++
	}
	return counts
}

// EdgeListEdgeCounts models the paper's edge list partitioning: the sorted
// edge list is cut into p equal ranges, so counts are |E|/p ± 1 by
// construction, independent of hub structure.
func EdgeListEdgeCounts(numEdges uint64, p int) []uint64 {
	counts := make([]uint64, p)
	for i := 0; i < p; i++ {
		counts[i] = numEdges*uint64(i+1)/uint64(p) - numEdges*uint64(i)/uint64(p)
	}
	return counts
}
