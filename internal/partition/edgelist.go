package partition

import (
	"encoding/binary"
	"fmt"
	"sort"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
	"havoqgt/internal/rt"
)

// BuildEdgeList collectively builds the edge-list partitioned graph of
// §III-A1. Every rank passes its share of the (directed) edge list — any
// decomposition works — and the number of vertices; the function:
//
//  1. globally sorts the edge list by (source, target) with a distributed
//     sample sort,
//  2. re-splits the sorted list into p equal-count ranges (the partitioning
//     itself: each rank ends up with |E|/p ± 1 edges, regardless of hubs),
//  3. exchanges boundary metadata to derive the master-ownership table, the
//     replica-forwarding chain for split adjacency lists, and global degrees
//     for boundary vertices,
//  4. builds the local CSR.
//
// Must be called collectively by every rank of the machine.
func BuildEdgeList(r *rt.Rank, local []graph.Edge, numVertices uint64) (*Part, error) {
	return buildEdgeList(r, local, numVertices, false)
}

// BuildEdgeListSimple is BuildEdgeList with global simplification: self
// loops and duplicate edges are removed after the distributed sort. K-core
// and triangle counting require a simple graph; generators like RMAT emit
// duplicates.
func BuildEdgeListSimple(r *rt.Rank, local []graph.Edge, numVertices uint64) (*Part, error) {
	return buildEdgeList(r, local, numVertices, true)
}

func buildEdgeList(r *rt.Rank, local []graph.Edge, numVertices uint64, simplify bool) (*Part, error) {
	local = append([]graph.Edge(nil), local...) // own and mutate freely
	if simplify {
		// Drop self loops before the sort; duplicates fall out after it.
		kept := local[:0]
		for _, e := range local {
			if !e.IsSelfLoop() {
				kept = append(kept, e)
			}
		}
		local = kept
	}
	graph.SortEdges(local)
	local = sampleSortExchange(r, local)
	if simplify {
		// After the sample sort all copies of an edge are contiguous on one
		// rank (splitter cuts fall on value boundaries), so local
		// deduplication is globally complete.
		dedup := local[:0]
		for _, e := range local {
			if len(dedup) > 0 && dedup[len(dedup)-1] == e {
				continue
			}
			dedup = append(dedup, e)
		}
		local = dedup
	}
	local = rebalanceEqualCounts(r, local)

	// --- boundary metadata exchange ---
	p := r.Size()
	meta := make([]byte, 25)
	if len(local) > 0 {
		meta[0] = 1
		binary.LittleEndian.PutUint64(meta[1:], uint64(local[0].Src))
		binary.LittleEndian.PutUint64(meta[9:], uint64(local[len(local)-1].Src))
		binary.LittleEndian.PutUint64(meta[17:], uint64(local[len(local)-1].Dst))
	}
	allMeta := r.AllGatherBytes(meta)
	hasEdges := make([]bool, p)
	firstSrc := make([]uint64, p)
	lastSrc := make([]uint64, p)
	lastDst := make([]uint64, p)
	for i, m := range allMeta {
		hasEdges[i] = m[0] == 1
		firstSrc[i] = binary.LittleEndian.Uint64(m[1:])
		lastSrc[i] = binary.LittleEndian.Uint64(m[9:])
		lastDst[i] = binary.LittleEndian.Uint64(m[17:])
		if hasEdges[i] && lastSrc[i] >= numVertices {
			return nil, fmt.Errorf("partition: vertex %d out of range (n=%d)", lastSrc[i], numVertices)
		}
	}

	// Master ownership: sweep left to right handing each rank the vertices
	// from the first not-yet-owned id through its last source. Gaps
	// (isolated vertices) attach to the next rank; the final rank extends
	// to numVertices.
	start := make([]uint64, p+1)
	nextFree := uint64(0)
	for i := 0; i < p; i++ {
		start[i] = nextFree
		if hasEdges[i] && lastSrc[i]+1 > nextFree {
			nextFree = lastSrc[i] + 1
		}
	}
	start[p] = numVertices
	owners, err := NewOwnerTable(start)
	if err != nil {
		return nil, err
	}

	part := &Part{
		Rank:           r.Rank(),
		P:              p,
		NumVertices:    numVertices,
		Owners:         owners,
		BoundaryDegree: make(map[graph.Vertex]uint64),
	}
	part.GlobalEdges = r.AllReduceU64(uint64(len(local)), rt.Sum)

	// State range: the master range, widened to include replica slots for
	// boundary vertices whose adjacency this rank holds a fragment of.
	me := r.Rank()
	lo, hi := start[me], start[me+1] // master range [lo, hi)
	stateLo, stateHi := lo, hi
	if hasEdges[me] {
		if firstSrc[me] < stateLo {
			stateLo = firstSrc[me]
		}
		if lastSrc[me]+1 > stateHi {
			stateHi = lastSrc[me] + 1
		}
	}
	if stateHi < stateLo {
		stateHi = stateLo // empty partition
	}
	part.StateStart = graph.Vertex(stateLo)
	part.StateLen = int(stateHi - stateLo)

	// Replica forwarding: my last vertex's list continues on the next rank
	// (not necessarily rank+1 when empty partitions intervene) iff some
	// later rank's first source equals my last source.
	if hasEdges[me] {
		for j := me + 1; j < p; j++ {
			if !hasEdges[j] {
				continue
			}
			if firstSrc[j] == lastSrc[me] {
				part.HasForward = true
				part.ForwardVertex = graph.Vertex(lastSrc[me])
				part.ForwardTo = j
			}
			break
		}
	}

	// Split-row tail: when my first row continues the previous holder's last
	// row, record that holder's final stored edge. Multigraph-safe kernels
	// use it to deduplicate duplicate-target runs that straddle the replica
	// boundary (targets within a row are globally sorted, so all copies of a
	// duplicate edge are contiguous across the chain's portions).
	if hasEdges[me] {
		for j := me - 1; j >= 0; j-- {
			if !hasEdges[j] {
				continue
			}
			if lastSrc[j] == firstSrc[me] {
				part.PrevTail = graph.Edge{Src: graph.Vertex(lastSrc[j]), Dst: graph.Vertex(lastDst[j])}
				part.PrevTailValid = true
			}
			break
		}
	}

	// Global degrees for boundary vertices: every rank publishes the local
	// degree of its first and last source; summing the records per vertex
	// yields the full degree for any vertex that appears as a boundary
	// anywhere (split vertices appear as a boundary on every rank of their
	// chain).
	part.exchangeBoundaryDegrees(r, local, hasEdges, firstSrc, lastSrc)

	m, err := csr.FromSortedEdges(local, part.StateStart, part.StateLen)
	if err != nil {
		return nil, err
	}
	part.CSR = m
	return part, nil
}

// sampleSortExchange redistributes the locally sorted edges so rank r holds
// the r-th range of the global (Src, Dst) order. Standard sample sort:
// evenly spaced local samples, gathered everywhere, define p-1 splitters.
func sampleSortExchange(r *rt.Rank, local []graph.Edge) []graph.Edge {
	p := r.Size()
	if p == 1 {
		return local
	}
	// Oversample for balance; the follow-up equal-count rebalance fixes any
	// residual skew exactly, so moderate oversampling suffices.
	s := min(len(local), max(32, 8*p))
	samples := make([]graph.Edge, 0, s)
	for i := 0; i < s; i++ {
		samples = append(samples, local[i*len(local)/s])
	}
	gathered := r.AllGatherBytes(encodeEdges(samples))
	var all []graph.Edge
	for _, g := range gathered {
		all = decodeEdgesInto(all, g)
	}
	graph.SortEdges(all)
	splitters := make([]graph.Edge, 0, p-1)
	for i := 1; i < p; i++ {
		if len(all) == 0 {
			splitters = append(splitters, graph.Edge{})
			continue
		}
		splitters = append(splitters, all[min(i*len(all)/p, len(all)-1)])
	}

	out := make([][]byte, p)
	prev := 0
	for i := 0; i < p; i++ {
		var cut int
		if i == p-1 {
			cut = len(local)
		} else {
			sp := splitters[i]
			cut = prev + sort.Search(len(local)-prev, func(k int) bool {
				return graph.CompareEdges(local[prev+k], sp) >= 0
			})
		}
		out[i] = encodeEdges(local[prev:cut])
		prev = cut
	}
	in := r.AllToAllv(out)
	merged := make([]graph.Edge, 0, len(local))
	for _, buf := range in {
		merged = decodeEdgesInto(merged, buf)
	}
	graph.SortEdges(merged)
	return merged
}

// rebalanceEqualCounts shifts edges between ranks so every rank holds
// exactly total/p (±1) edges of the already-sorted global order — the
// "evenly partitioned" step that neutralizes hub-induced data imbalance.
func rebalanceEqualCounts(r *rt.Rank, local []graph.Edge) []graph.Edge {
	p := r.Size()
	if p == 1 {
		return local
	}
	counts := r.AllGatherU64(uint64(len(local)))
	var off, total uint64
	for i, c := range counts {
		if i < r.Rank() {
			off += c
		}
		total += c
	}
	target := func(i int) uint64 { return total * uint64(i) / uint64(p) }
	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		tLo, tHi := target(i), target(i+1)
		lo := max(tLo, off)
		hi := min(tHi, off+uint64(len(local)))
		if lo < hi {
			out[i] = encodeEdges(local[lo-off : hi-off])
		}
	}
	in := r.AllToAllv(out)
	merged := make([]graph.Edge, 0)
	for _, buf := range in { // sender order == ascending global offset
		merged = decodeEdgesInto(merged, buf)
	}
	return merged
}

// exchangeBoundaryDegrees publishes (vertex, localDegree) for this rank's
// first and last sources and accumulates the records into
// part.BoundaryDegree.
func (part *Part) exchangeBoundaryDegrees(r *rt.Rank, local []graph.Edge, hasEdges []bool, firstSrc, lastSrc []uint64) {
	me := r.Rank()
	var rec []byte
	put := func(v uint64, deg uint64) {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:], v)
		binary.LittleEndian.PutUint64(b[8:], deg)
		rec = append(rec, b[:]...)
	}
	if hasEdges[me] {
		countDeg := func(v uint64) uint64 {
			var d uint64
			for _, e := range local { // boundary vertices only; fine to scan
				if uint64(e.Src) == v {
					d++
				}
			}
			return d
		}
		put(firstSrc[me], countDeg(firstSrc[me]))
		if lastSrc[me] != firstSrc[me] {
			put(lastSrc[me], countDeg(lastSrc[me]))
		}
	}
	for _, buf := range r.AllGatherBytes(rec) {
		for off := 0; off+16 <= len(buf); off += 16 {
			v := graph.Vertex(binary.LittleEndian.Uint64(buf[off:]))
			d := binary.LittleEndian.Uint64(buf[off+8:])
			part.BoundaryDegree[v] += d
		}
	}
}
