package partition

import (
	"encoding/binary"

	"havoqgt/internal/graph"
)

// Edge wire format: 16 bytes little-endian (src, dst).
const edgeBytes = 16

// encodeEdges serializes edges for an AllToAllv exchange.
func encodeEdges(edges []graph.Edge) []byte {
	buf := make([]byte, len(edges)*edgeBytes)
	for i, e := range edges {
		binary.LittleEndian.PutUint64(buf[i*edgeBytes:], uint64(e.Src))
		binary.LittleEndian.PutUint64(buf[i*edgeBytes+8:], uint64(e.Dst))
	}
	return buf
}

// decodeEdgesInto appends decoded edges to dst.
func decodeEdgesInto(dst []graph.Edge, buf []byte) []graph.Edge {
	for off := 0; off+edgeBytes <= len(buf); off += edgeBytes {
		dst = append(dst, graph.Edge{
			Src: graph.Vertex(binary.LittleEndian.Uint64(buf[off:])),
			Dst: graph.Vertex(binary.LittleEndian.Uint64(buf[off+8:])),
		})
	}
	return dst
}
