// Package partition builds distributed graph partitions:
//
//   - BuildEdgeList: the paper's novel *edge list partitioning* (§III-A1) —
//     the global edge list is sorted by source (distributed sample sort) and
//     split into equal-count ranges, so hub adjacency lists span consecutive
//     partitions and every partition holds the same number of edges.
//   - Build1D: the traditional 1D baseline (each vertex's whole adjacency
//     list on one partition), which Figure 12 compares against.
//   - Imbalance models for 1D, 2D-block, and edge-list partitioning
//     (Figure 2).
//
// Both builders produce a Part, the uniform partition view the visitor-queue
// core traverses: a replicated master-ownership table, a local CSR over the
// rank's vertex state range, and (edge-list only) the replica-forwarding
// metadata for split adjacency lists.
package partition

import (
	"fmt"
	"sort"

	"havoqgt/internal/csr"
	"havoqgt/internal/graph"
)

// OwnerTable is the replicated table mapping a vertex to its master
// partition: rank r masters vertices [start[r], start[r+1]). It is the
// constant-size structure that makes min_owner(v) an O(lg p) lookup on any
// rank (the paper's alternative of packing owner bits into the identifier
// trades this lookup for identifier space).
type OwnerTable struct {
	start []uint64 // len p+1; start[0]=0, start[p]=NumVertices; non-decreasing
}

// NewOwnerTable validates and wraps a boundary array.
func NewOwnerTable(start []uint64) (OwnerTable, error) {
	if len(start) < 2 || start[0] != 0 {
		return OwnerTable{}, fmt.Errorf("partition: owner table must begin at 0 with p+1 entries")
	}
	for i := 1; i < len(start); i++ {
		if start[i] < start[i-1] {
			return OwnerTable{}, fmt.Errorf("partition: owner table not monotone at %d", i)
		}
	}
	return OwnerTable{start: start}, nil
}

// P returns the number of partitions.
func (t OwnerTable) P() int { return len(t.start) - 1 }

// NumVertices returns the total vertex count.
func (t OwnerTable) NumVertices() uint64 { return t.start[len(t.start)-1] }

// Master returns min_owner(v): the first rank holding v's adjacency (or, for
// an isolated vertex, the rank covering its id range).
func (t OwnerTable) Master(v graph.Vertex) int {
	if uint64(v) >= t.NumVertices() {
		panic(fmt.Sprintf("partition: vertex %d out of range (n=%d)", v, t.NumVertices()))
	}
	// First r with start[r+1] > v; empty ranges (start[r]==start[r+1]) are
	// skipped automatically.
	return sort.Search(t.P(), func(r int) bool { return t.start[r+1] > uint64(v) })
}

// MasterRange returns the half-open master vertex range of rank r.
func (t OwnerTable) MasterRange(r int) (lo, hi uint64) { return t.start[r], t.start[r+1] }

// Part is one rank's view of a partitioned graph. It is built collectively
// (BuildEdgeList / Build1D) and then traversed by internal/core.
type Part struct {
	Rank int
	P    int

	NumVertices uint64
	GlobalEdges uint64 // total local-edge count across all ranks

	Owners OwnerTable

	// Local vertex state range [StateStart, StateStart+StateLen): the
	// master range plus replica slots for split boundary vertices.
	StateStart graph.Vertex
	StateLen   int

	// CSR holds the local adjacency; row i is vertex StateStart+i.
	CSR *csr.Matrix

	// Replica forwarding: when HasForward, visitors applied to ForwardVertex
	// must be forwarded to rank ForwardTo, the next partition holding a
	// piece of that vertex's adjacency list (Alg. 1, check_mailbox).
	HasForward    bool
	ForwardVertex graph.Vertex
	ForwardTo     int

	// BoundaryDegree maps partition-boundary vertices to their full global
	// degree (their local CSR degree is only a fragment when the adjacency
	// list spans ranks). Algorithms needing degree(v), like k-core
	// initialization, consult this first.
	BoundaryDegree map[graph.Vertex]uint64

	// PrevTail is the previous holder's final stored edge when this rank's
	// first row continues a split adjacency list (PrevTailValid). Because
	// targets within a row are sorted, all copies of a duplicate edge are
	// contiguous across the chain's portions, so this single edge is enough
	// for multigraph-safe kernels (triangle counting) to skip a duplicate
	// run straddling the boundary. Edge-list partitioning only.
	PrevTail      graph.Edge
	PrevTailValid bool
}

// LocalIndex maps a vertex to its row in the local state range.
func (p *Part) LocalIndex(v graph.Vertex) (int, bool) {
	if v < p.StateStart {
		return 0, false
	}
	i := uint64(v - p.StateStart)
	if i >= uint64(p.StateLen) {
		return 0, false
	}
	return int(i), true
}

// Vertex maps a local row index back to the global vertex id.
func (p *Part) Vertex(i int) graph.Vertex { return p.StateStart + graph.Vertex(i) }

// Master returns min_owner(v).
func (p *Part) Master(v graph.Vertex) int { return p.Owners.Master(v) }

// IsMaster reports whether this rank is v's master.
func (p *Part) IsMaster(v graph.Vertex) bool { return p.Owners.Master(v) == p.Rank }

// GlobalDegree returns the full degree of a locally held vertex, accounting
// for adjacency lists split across partitions.
func (p *Part) GlobalDegree(v graph.Vertex) uint64 {
	if d, ok := p.BoundaryDegree[v]; ok {
		return d
	}
	i, ok := p.LocalIndex(v)
	if !ok {
		panic(fmt.Sprintf("partition: GlobalDegree of non-local vertex %d on rank %d", v, p.Rank))
	}
	return p.CSR.Degree(i)
}

// ShouldForward reports whether a visitor for v must continue to the next
// replica after being applied locally (my_rank < max_owner(v) in Alg. 1).
func (p *Part) ShouldForward(v graph.Vertex) (int, bool) {
	if p.HasForward && v == p.ForwardVertex {
		return p.ForwardTo, true
	}
	return 0, false
}

// LocalEdges returns the number of edges stored on this rank.
func (p *Part) LocalEdges() uint64 { return p.CSR.NumEdges() }
