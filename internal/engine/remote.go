package engine

import (
	"fmt"
	"time"

	"havoqgt/internal/termination"
)

// SubmitRemote admits a query under a coordinator-assigned ID, bypassing local
// admission control. Cluster workers need both properties:
//
//   - The ID is the mailbox record tag and the termination-mux slot, and both
//     travel across the fabric — every process must run the same query under
//     the same ID, so the coordinator allocates IDs and workers accept them.
//
//   - Worker-local queueing would deadlock the cluster: a rank that has not
//     replayed a query's start event parks that query's termination waves in
//     its Mux, so if worker A queues a query that worker B already started,
//     B's ranks spin inside the query's detector forever while A waits for a
//     free slot that B's stalled queries are holding. Admission therefore
//     happens exactly once, globally, at the coordinator; workers start every
//     accepted query unconditionally.
//
// No deadline timer is armed here either — the coordinator owns the deadline
// and broadcasts an explicit cancel, so all workers flip to drain mode off the
// same control decision instead of racing local clocks.
func (e *Engine) SubmitRemote(id uint32, spec Spec) (*Ticket, error) {
	if err := e.validate(spec); err != nil {
		return nil, err
	}
	if id == 0 || uint64(id) > uint64(termination.MaxID) {
		return nil, fmt.Errorf("engine: remote query id %d out of range [1, %d]", id, termination.MaxID)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	q := &query{
		id:        id,
		spec:      spec,
		res:       newResult(spec, e.n),
		flow:      make([]FlowCell, e.p),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	e.outstanding++
	e.inflight++
	e.obsSubmitted.Inc()
	e.obsInFlight.Set(int64(e.inflight))
	e.log.append(ctlEvent{kind: evStart, q: q})
	e.mu.Unlock()
	return &Ticket{e: e, q: q}, nil
}
