package engine_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/check"
	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// buildEngine constructs a partitioned RMAT graph on a fresh machine and
// starts an engine over it. Also returns the full edge list for reference
// computations.
func buildEngine(t *testing.T, scale uint, p int, topo string, opts engine.Options) (*engine.Engine, []graph.Edge, uint64) {
	t.Helper()
	check.NoLeaks(t) // before anything spawns: the leak check must run last
	gen := generators.NewGraph500(scale, 42)
	n := gen.NumVertices()
	var edges []graph.Edge
	for r := 0; r < p; r++ {
		edges = append(edges, graph.Undirect(gen.GenerateChunk(r, p))...)
	}
	m := rt.NewMachine(p)
	parts := make([]*partition.Part, p)
	ghosts := make([]*core.GhostTable, p)
	m.Run(func(r *rt.Rank) {
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
		ghosts[r.Rank()] = core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
	})
	e, err := engine.Start(engine.Config{Machine: m, Parts: parts, Ghosts: ghosts, Topology: topo}, opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return e, edges, n
}

// checkFlows asserts the per-query conservation invariants on a completed
// ticket.
func checkFlows(t *testing.T, tk *engine.Ticket) {
	t.Helper()
	flows := make([]check.QueryFlow, len(tk.Flows()))
	for r, f := range tk.Flows() {
		flows[r] = check.QueryFlow{
			Sent: f.Sent, Delivered: f.Delivered,
			DetSent: f.DetSent, DetReceived: f.DetReceived,
		}
	}
	if err := check.Error(check.QueryConservation(tk.ID(), flows)); err != nil {
		t.Error(err)
	}
}

// TestEngineBFSMatchesReference runs one engine-backed BFS and compares
// levels against the sequential reference, and parents for consistency.
func TestEngineBFSMatchesReference(t *testing.T) {
	e, edges, n := buildEngine(t, 8, 4, "1d", engine.Options{})
	defer e.Close()

	adj := ref.BuildAdj(edges, n)
	wantLevels, _ := ref.BFS(adj, 0)

	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := tk.Wait()
	if res.Cancelled {
		t.Fatal("query reported cancelled without a Cancel call")
	}
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] != wantLevels[v] {
			t.Fatalf("vertex %d: level %d, reference %d", v, res.Levels[v], wantLevels[v])
		}
	}
	// Parent consistency: a reached non-source vertex's parent must sit one
	// level above it (exact parents are run-dependent among equals).
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] == bfs.Unreached || v == 0 {
			continue
		}
		p := res.Parents[v]
		if p == graph.Nil || res.Levels[p] != res.Levels[v]-1 {
			t.Fatalf("vertex %d at level %d has parent %d at level %d", v, res.Levels[v], p, res.Levels[p])
		}
	}
	if res.Waves == 0 {
		t.Error("expected at least one termination wave")
	}
	checkFlows(t, tk)
}

// TestEngineConcurrentQueries drives at least 8 concurrent in-flight
// traversals (mixed algorithms) through one engine and checks every result
// against the sequential references plus per-query conservation.
func TestEngineConcurrentQueries(t *testing.T) {
	const p = 4
	e, edges, n := buildEngine(t, 8, p, "2d", engine.Options{MaxInFlight: 8})
	defer e.Close()

	adj := ref.BuildAdj(edges, n)

	type job struct {
		spec engine.Spec
		tk   *engine.Ticket
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		jobs = append(jobs,
			job{spec: engine.Spec{Algo: engine.AlgoBFS, Source: graph.Vertex(i * 3)}},
			job{spec: engine.Spec{Algo: engine.AlgoSSSP, Source: graph.Vertex(i * 5), WeightSeed: uint64(i)}},
		)
	}
	jobs = append(jobs,
		job{spec: engine.Spec{Algo: engine.AlgoCC}},
		job{spec: engine.Spec{Algo: engine.AlgoKCore, K: 2}},
		job{spec: engine.Spec{Algo: engine.AlgoBFSDO, Source: 7}},
		job{spec: engine.Spec{Algo: engine.AlgoPageRank, Iters: 8}},
		job{spec: engine.Spec{Algo: engine.AlgoTriangles}},
	)

	// Submit everything up front: with MaxInFlight 8 and 10 jobs, at least 8
	// traversals interleave over the shared message plane.
	var wg sync.WaitGroup
	for i := range jobs {
		tk, err := e.Submit(jobs[i].spec)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs[i].tk = tk
		wg.Add(1)
		go func() { defer wg.Done(); tk.Wait() }()
	}
	wg.Wait()

	for i, j := range jobs {
		res := j.tk.Wait()
		if res.Cancelled {
			t.Fatalf("job %d cancelled unexpectedly", i)
		}
		switch j.spec.Algo {
		case engine.AlgoBFS:
			want, _ := ref.BFS(adj, j.spec.Source)
			for v := uint64(0); v < n; v++ {
				if res.Levels[v] != want[v] {
					t.Fatalf("job %d (bfs from %d) vertex %d: level %d, reference %d",
						i, j.spec.Source, v, res.Levels[v], want[v])
				}
			}
		case engine.AlgoSSSP:
			seed := j.spec.WeightSeed
			want, _ := ref.Dijkstra(adj, j.spec.Source, func(u, v graph.Vertex) uint64 {
				return sssp.Weight(u, v, seed)
			})
			for v := uint64(0); v < n; v++ {
				if res.Dist[v] != want[v] {
					t.Fatalf("job %d (sssp from %d) vertex %d: dist %d, reference %d",
						i, j.spec.Source, v, res.Dist[v], want[v])
				}
			}
		case engine.AlgoCC:
			want, count := ref.Components(adj)
			if res.Components != count {
				t.Fatalf("job %d (cc): %d components, reference %d", i, res.Components, count)
			}
			for v := uint64(0); v < n; v++ {
				if res.Labels[v] != want[v] {
					t.Fatalf("job %d (cc) vertex %d: label %d, reference %d", i, v, res.Labels[v], want[v])
				}
			}
		case engine.AlgoKCore:
			want := ref.KCore(adj, j.spec.K)
			if res.CoreSize != ref.CoreSize(want) {
				t.Fatalf("job %d (kcore): core size %d, reference %d", i, res.CoreSize, ref.CoreSize(want))
			}
			for v := uint64(0); v < n; v++ {
				if res.InCore[v] != want[v] {
					t.Fatalf("job %d (kcore) vertex %d: in-core %v, reference %v", i, v, res.InCore[v], want[v])
				}
			}
		case engine.AlgoBFSDO:
			// Hash-identity bar: DO levels must equal the reference (and so the
			// visitor-queue BFS) exactly, with consistent parents.
			want, _ := ref.BFS(adj, j.spec.Source)
			for v := uint64(0); v < n; v++ {
				if res.Levels[v] != want[v] {
					t.Fatalf("job %d (bfs_do from %d) vertex %d: level %d, reference %d",
						i, j.spec.Source, v, res.Levels[v], want[v])
				}
				if res.Levels[v] != bfs.Unreached && v != uint64(j.spec.Source) {
					p := res.Parents[v]
					if p == graph.Nil || res.Levels[p] != res.Levels[v]-1 {
						t.Fatalf("job %d (bfs_do) vertex %d parent %d invalid", i, v, p)
					}
				}
			}
		case engine.AlgoPageRank:
			want := ref.PageRank(adj, int(j.spec.Iters))
			for v := uint64(0); v < n; v++ {
				if res.Ranks[v] != want[v] {
					t.Fatalf("job %d (pagerank) vertex %d: rank %d, reference %d",
						i, v, res.Ranks[v], want[v])
				}
			}
		case engine.AlgoTriangles:
			// The engine graph is a raw RMAT multigraph; the count must match
			// the reference over the simplified graph.
			want := ref.CountTriangles(ref.BuildAdj(graph.Simplify(edges), n))
			if res.Triangles != want {
				t.Fatalf("job %d (triangles): %d, reference %d", i, res.Triangles, want)
			}
		}
		checkFlows(t, j.tk)
	}
}

// TestEngineAdmissionControl fills every in-flight slot and the wait queue,
// then verifies the next submission is rejected with the distinct error and
// that waiting queries run after slots free up.
func TestEngineAdmissionControl(t *testing.T) {
	e, _, _ := buildEngine(t, 7, 3, "1d", engine.Options{MaxInFlight: 2, MaxQueue: 3})
	defer e.Close()

	var tickets []*engine.Ticket
	for i := 0; i < 5; i++ { // 2 in flight + 3 waiting
		tk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: graph.Vertex(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0}); !errors.Is(err, engine.ErrRejected) {
		t.Fatalf("6th submit: got %v, want ErrRejected", err)
	}
	for i, tk := range tickets {
		res := tk.Wait()
		if res.Cancelled {
			t.Fatalf("ticket %d cancelled", i)
		}
		checkFlows(t, tk)
	}
	// Slots are free again: a new submission is admitted.
	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	tk.Wait()
}

// TestEngineCancellation cancels an in-flight query and checks the engine
// quiesces it with no stranded records: per-query conservation must hold
// exactly even though visitors stopped being applied mid-flight, and later
// queries on the same engine must be unaffected.
func TestEngineCancellation(t *testing.T) {
	e, edges, n := buildEngine(t, 9, 4, "3d", engine.Options{})
	defer e.Close()

	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoSSSP, Source: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tk.Cancel()
	res := tk.Wait()
	if !res.Cancelled {
		t.Fatal("cancelled query did not report Cancelled")
	}
	checkFlows(t, tk) // no stranded tagged records anywhere

	// Cancelling again (completed query) is a no-op.
	tk.Cancel()

	// The engine keeps serving correct results after a cancellation.
	adj := ref.BuildAdj(edges, n)
	want, _ := ref.BFS(adj, 2)
	tk2, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 2})
	if err != nil {
		t.Fatalf("Submit after cancel: %v", err)
	}
	res2 := tk2.Wait()
	for v := uint64(0); v < n; v++ {
		if res2.Levels[v] != want[v] {
			t.Fatalf("post-cancel BFS vertex %d: level %d, reference %d", v, res2.Levels[v], want[v])
		}
	}
	checkFlows(t, tk2)
}

// TestEngineDeadline submits a query with a deadline short enough to expire
// mid-flight and checks it completes as cancelled with conserved flows.
func TestEngineDeadline(t *testing.T) {
	e, _, _ := buildEngine(t, 10, 4, "1d", engine.Options{})
	defer e.Close()

	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoCC, Deadline: time.Microsecond})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res := tk.Wait()
	if !res.Cancelled {
		t.Skip("query beat a 1µs deadline; nothing to assert")
	}
	checkFlows(t, tk)
}

// TestEngineCancelWaiting cancels a query still parked in the wait queue: it
// must complete immediately as cancelled without ever touching the ranks.
func TestEngineCancelWaiting(t *testing.T) {
	e, _, _ := buildEngine(t, 8, 3, "1d", engine.Options{MaxInFlight: 1, MaxQueue: 4})
	defer e.Close()

	first, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waiting, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit waiting: %v", err)
	}
	waiting.Cancel()
	res := waiting.Wait()
	if !res.Cancelled {
		t.Fatal("cancelled waiting query did not report Cancelled")
	}
	for r, f := range waiting.Flows() {
		if f != (engine.FlowCell{}) {
			t.Fatalf("never-started query has nonzero flow on rank %d: %+v", r, f)
		}
	}
	first.Wait()
}

// TestEngineSubmitValidation covers spec validation and post-Close rejection.
func TestEngineSubmitValidation(t *testing.T) {
	e, _, n := buildEngine(t, 7, 2, "1d", engine.Options{})

	if _, err := e.Submit(engine.Spec{Algo: "betweenness"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: graph.Vertex(n)}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoBFSDO, Source: graph.Vertex(n)}); err == nil {
		t.Error("out-of-range bfs_do source accepted")
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoKCore, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoPageRank, Iters: 1000}); err == nil {
		t.Error("pagerank iteration count beyond MaxIters accepted")
	}
	// Resume capability: algorithms without monotone per-vertex state reject
	// Spec.Resume with the typed sentinel.
	for _, algo := range []engine.Algo{engine.AlgoKCore, engine.AlgoPageRank,
		engine.AlgoTriangles, engine.AlgoBFSDO} {
		spec := engine.Spec{Algo: algo, K: 2}
		spec.Resume = &engine.Checkpoint{Spec: spec, Res: &engine.Result{Cancelled: true}}
		if _, err := e.Submit(spec); !errors.Is(err, engine.ErrNotResumable) {
			t.Errorf("%s resume: got %v, want ErrNotResumable", algo, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := e.Submit(engine.Spec{Algo: engine.AlgoCC}); !errors.Is(err, engine.ErrClosed) {
		t.Errorf("post-Close submit: got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestEngineCloseDrains submits a batch and closes immediately: Close must
// block until every outstanding query (including waiting ones) completed.
func TestEngineCloseDrains(t *testing.T) {
	e, _, _ := buildEngine(t, 8, 3, "1d", engine.Options{MaxInFlight: 2})

	var tickets []*engine.Ticket
	for i := 0; i < 6; i++ {
		tk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: graph.Vertex(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("Close returned with query %d still outstanding", i)
		}
	}
}
