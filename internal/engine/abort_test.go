package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"havoqgt/internal/engine"
	"havoqgt/internal/graph"
)

// TestAbortInFlight: Abort must retire an in-flight query promptly without
// global quiescence, mark it cancelled with context.Canceled, and leave the
// engine healthy for subsequent queries.
func TestAbortInFlight(t *testing.T) {
	e, _, _ := buildEngine(t, 10, 4, "1d", engine.Options{MaxInFlight: 8})
	defer e.Close()

	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoSSSP, Source: 0, WeightSeed: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tk.Abort()
	select {
	case <-tk.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("aborted query did not complete")
	}
	res := tk.Wait()
	if !res.Cancelled {
		t.Error("aborted query not marked cancelled")
	}
	if !errors.Is(tk.Err(), context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", tk.Err())
	}
	tk.Abort() // idempotent on a done query

	// The engine must still run clean queries after an abort: the aborted
	// ID's tombstones may not leak into other queries' demux or detectors.
	tk2, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 1})
	if err != nil {
		t.Fatalf("Submit after abort: %v", err)
	}
	res2 := tk2.Wait()
	if res2.Cancelled {
		t.Fatal("clean query after abort reported cancelled")
	}
	if res2.Waves == 0 {
		t.Error("clean query after abort detected no termination waves")
	}
	checkFlows(t, tk2)
}

// TestAbortWaitingQuery: aborting a query still parked in the admission queue
// completes it in place, like Cancel.
func TestAbortWaitingQuery(t *testing.T) {
	e, _, _ := buildEngine(t, 9, 2, "1d", engine.Options{MaxInFlight: 1, MaxQueue: 4})
	defer e.Close()

	blocker, err := e.Submit(engine.Spec{Algo: engine.AlgoSSSP, Source: 0, WeightSeed: 1})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waiting, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 2})
	if err != nil {
		t.Fatalf("Submit waiting: %v", err)
	}
	waiting.Abort()
	select {
	case <-waiting.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("aborted waiting query did not complete")
	}
	if !waiting.Wait().Cancelled {
		t.Error("aborted waiting query not marked cancelled")
	}
	if !errors.Is(waiting.Err(), context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", waiting.Err())
	}
	if blocker.Wait().Cancelled {
		t.Fatal("blocker was disturbed by the waiting query's abort")
	}
}

// TestAbortAllThenClose: aborting every in-flight query and closing the
// engine must not hang — the abort path is what cluster workers run when a
// peer process dies, where cancel-drain could never quiesce.
func TestAbortAllThenClose(t *testing.T) {
	e, _, _ := buildEngine(t, 10, 4, "2d", engine.Options{MaxInFlight: 8})

	var tks []*engine.Ticket
	for i := 0; i < 6; i++ {
		tk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: graph.Vertex(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tks = append(tks, tk)
	}
	for _, tk := range tks {
		tk.Abort()
	}
	done := make(chan struct{})
	go func() {
		for _, tk := range tks {
			tk.Wait()
		}
		e.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Close hung after aborting all in-flight queries")
	}
}
