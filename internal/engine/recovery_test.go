package engine_test

// Recovery-path tests: cancellation causes as context errors, WaitCtx
// prompt release of queued queries, checkpoint/resume of cancelled
// traversals, and the engine running its shared mailbox in reliable mode
// over a faulty transport.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/check"
	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/faults"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// buildEngineFaulty is buildEngine with a fault injector armed on the
// machine's transport after graph construction (the build phase's collectives
// are not part of the fault model).
func buildEngineFaulty(t *testing.T, scale uint, p int, topo string,
	opts engine.Options, plan faults.Plan) (*engine.Engine, []graph.Edge, uint64) {
	t.Helper()
	check.NoLeaks(t)
	gen := generators.NewGraph500(scale, 42)
	n := gen.NumVertices()
	var edges []graph.Edge
	for r := 0; r < p; r++ {
		edges = append(edges, graph.Undirect(gen.GenerateChunk(r, p))...)
	}
	m := rt.NewMachine(p)
	parts := make([]*partition.Part, p)
	ghosts := make([]*core.GhostTable, p)
	m.Run(func(r *rt.Rank) {
		local := graph.Undirect(gen.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, n)
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
		ghosts[r.Rank()] = core.BuildGhostTable(part, core.DefaultGhostsPerPartition)
	})
	inj := faults.New(plan, m.Obs())
	m.SetTransport(inj)
	inj.Arm()
	e, err := engine.Start(engine.Config{Machine: m, Parts: parts, Ghosts: ghosts, Topology: topo}, opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return e, edges, n
}

// TestEngineErrCauses checks the Err mapping: clean completion is nil,
// explicit Cancel is context.Canceled, deadline expiry is
// context.DeadlineExceeded.
func TestEngineErrCauses(t *testing.T) {
	e, _, _ := buildEngine(t, 8, 3, "1d", engine.Options{MaxInFlight: 1, MaxQueue: 4})
	defer e.Close()

	// Clean completion.
	done, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done.Wait()
	if got := done.Err(); got != nil {
		t.Fatalf("completed query Err = %v, want nil", got)
	}

	// Explicit cancel of a queued query.
	blocker, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	queued, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 1})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	queued.Cancel()
	queued.Wait()
	if got := queued.Err(); !errors.Is(got, context.Canceled) {
		t.Fatalf("cancelled query Err = %v, want context.Canceled", got)
	}
	blocker.Wait()

	// Deadline expiry.
	dl, err := e.Submit(engine.Spec{Algo: engine.AlgoCC, Deadline: time.Microsecond})
	if err != nil {
		t.Fatalf("Submit deadline: %v", err)
	}
	res := dl.Wait()
	if !res.Cancelled {
		t.Skip("query beat a 1µs deadline; nothing to assert")
	}
	if got := dl.Err(); !errors.Is(got, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired query Err = %v, want context.DeadlineExceeded", got)
	}
	if e.Obs().Counter(obs.EngineDeadlineExpired).Value() == 0 {
		t.Error("EngineDeadlineExpired counter not incremented")
	}
}

// TestEngineWaitCtxReleasesQueuedQuery is the wait-queue cancellation
// regression test: a query parked behind a full in-flight set whose caller
// context expires must come back promptly with context.DeadlineExceeded and
// free its wait-queue slot immediately — not linger until a slot opens.
func TestEngineWaitCtxReleasesQueuedQuery(t *testing.T) {
	e, _, _ := buildEngine(t, 10, 4, "1d", engine.Options{MaxInFlight: 1, MaxQueue: 1})
	defer e.Close()

	blocker, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	queued, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}

	// Pre-expired context: the deadline has already passed when WaitCtx runs,
	// so the call must cancel the (still-queued) query rather than wait for
	// the blocker to free a slot. Timeout 0 keeps the DeadlineExceeded cause.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	begin := time.Now()
	res, werr := queued.WaitCtx(ctx)
	elapsed := time.Since(begin)
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx = %v, want context.DeadlineExceeded", werr)
	}
	if !res.Cancelled {
		t.Fatal("queued query released by WaitCtx not marked Cancelled")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("WaitCtx took %v; queued query was not released promptly", elapsed)
	}

	// The wait-queue slot must be free immediately: with MaxQueue 1 and the
	// blocker still (possibly) running, this submit must not hit ErrRejected.
	next, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 1})
	if err != nil {
		t.Fatalf("post-release submit: %v (wait-queue slot not reclaimed)", err)
	}
	if res := next.Wait(); res.Cancelled {
		t.Fatal("follow-up query cancelled unexpectedly")
	}
	blocker.Wait()
}

// TestEngineResumeFromCheckpoint seeds a BFS from a synthetic mid-traversal
// checkpoint (the reference truncated at level 2) and requires the resumed
// query to finish the traversal exactly: full agreement with the reference,
// including parent consistency for vertices discovered after the cut.
func TestEngineResumeFromCheckpoint(t *testing.T) {
	e, edges, n := buildEngine(t, 9, 4, "2d", engine.Options{})
	defer e.Close()

	adj := ref.BuildAdj(edges, n)
	wantLv, wantPar := ref.BFS(adj, 0)

	const cut = 2
	lv := make([]uint32, n)
	par := make([]graph.Vertex, n)
	for v := uint64(0); v < n; v++ {
		if wantLv[v] <= cut {
			lv[v], par[v] = wantLv[v], wantPar[v]
		} else {
			lv[v], par[v] = bfs.Unreached, graph.Nil
		}
	}
	cp := &engine.Checkpoint{
		Spec: engine.Spec{Algo: engine.AlgoBFS, Source: 0},
		Res:  &engine.Result{Levels: lv, Parents: par, Cancelled: true},
	}
	tk, err := e.Submit(cp.ResumeSpec(0))
	if err != nil {
		t.Fatalf("Submit resume: %v", err)
	}
	res := tk.Wait()
	if res.Cancelled {
		t.Fatal("resumed query cancelled unexpectedly")
	}
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] != wantLv[v] {
			t.Fatalf("vertex %d: resumed level %d, reference %d", v, res.Levels[v], wantLv[v])
		}
	}
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] == bfs.Unreached || v == 0 {
			continue
		}
		p := res.Parents[v]
		if p == graph.Nil || res.Levels[p] != res.Levels[v]-1 {
			t.Fatalf("vertex %d at level %d has parent %d at level %d",
				v, res.Levels[v], p, res.Levels[p])
		}
	}
	if e.Obs().Counter(obs.EngineResumed).Value() != 1 {
		t.Error("EngineResumed counter not incremented")
	}
	checkFlows(t, tk)
}

// TestEngineDeadlineRetryWithCheckpoint is the end-to-end degradation loop a
// server runs: submit with a tight deadline, and on expiry resubmit from the
// cancelled attempt's checkpoint with a doubled budget until the traversal
// completes. The final result must match the reference regardless of how
// many attempts the deadline killed.
func TestEngineDeadlineRetryWithCheckpoint(t *testing.T) {
	e, edges, n := buildEngine(t, 10, 4, "1d", engine.Options{})
	defer e.Close()

	adj := ref.BuildAdj(edges, n)
	wantLv, _ := ref.BFS(adj, 3)

	spec := engine.Spec{Algo: engine.AlgoBFS, Source: 3, Deadline: 200 * time.Microsecond}
	var res *engine.Result
	cancelledAttempts := 0
	for attempt := 0; ; attempt++ {
		if attempt == 8 {
			spec.Deadline = 0 // last attempt: unbounded, must complete
		}
		tk, err := e.Submit(spec)
		if err != nil {
			t.Fatalf("Submit attempt %d: %v", attempt, err)
		}
		res = tk.Wait()
		if !res.Cancelled {
			break
		}
		cancelledAttempts++
		if !errors.Is(tk.Err(), context.DeadlineExceeded) {
			t.Fatalf("attempt %d: Err = %v, want context.DeadlineExceeded", attempt, tk.Err())
		}
		cp := tk.Checkpoint()
		if cp == nil {
			t.Fatalf("attempt %d: cancelled BFS produced no checkpoint", attempt)
		}
		spec = cp.ResumeSpec(spec.Deadline * 2)
	}
	for v := uint64(0); v < n; v++ {
		if res.Levels[v] != wantLv[v] {
			t.Fatalf("vertex %d: level %d after %d resumed attempts, reference %d",
				v, res.Levels[v], cancelledAttempts, wantLv[v])
		}
	}
	t.Logf("completed after %d deadline-cancelled attempts", cancelledAttempts)
}

// TestEngineCheckpointRules covers the checkpoint/resume contract edges:
// no checkpoint from clean completions or k-core, and Submit rejecting
// incompatible resume specs.
func TestEngineCheckpointRules(t *testing.T) {
	e, _, n := buildEngine(t, 7, 2, "1d", engine.Options{})
	defer e.Close()

	tk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	tk.Wait()
	if tk.Checkpoint() != nil {
		t.Error("clean completion produced a checkpoint")
	}

	kc, err := e.Submit(engine.Spec{Algo: engine.AlgoKCore, K: 2})
	if err != nil {
		t.Fatalf("Submit kcore: %v", err)
	}
	kc.Cancel()
	kc.Wait()
	if kc.Checkpoint() != nil {
		t.Error("kcore produced a checkpoint (its state is not resumable)")
	}

	// Incompatible resumes are rejected at validation.
	goodRes := &engine.Result{
		Levels:  make([]uint32, n),
		Parents: make([]graph.Vertex, n),
	}
	cases := map[string]engine.Spec{
		"kcore resume": {Algo: engine.AlgoKCore, K: 2,
			Resume: &engine.Checkpoint{Spec: engine.Spec{Algo: engine.AlgoKCore, K: 2}, Res: &engine.Result{}}},
		"algo mismatch": {Algo: engine.AlgoBFS, Source: 0,
			Resume: &engine.Checkpoint{Spec: engine.Spec{Algo: engine.AlgoCC}, Res: goodRes}},
		"source mismatch": {Algo: engine.AlgoBFS, Source: 1,
			Resume: &engine.Checkpoint{Spec: engine.Spec{Algo: engine.AlgoBFS, Source: 2}, Res: goodRes}},
		"nil state": {Algo: engine.AlgoBFS, Source: 0,
			Resume: &engine.Checkpoint{Spec: engine.Spec{Algo: engine.AlgoBFS}}},
		"wrong graph size": {Algo: engine.AlgoBFS, Source: 0,
			Resume: &engine.Checkpoint{Spec: engine.Spec{Algo: engine.AlgoBFS},
				Res: &engine.Result{Levels: make([]uint32, 1), Parents: make([]graph.Vertex, 1)}}},
	}
	for name, spec := range cases {
		if _, err := e.Submit(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEngineReliableUnderMessageFaults runs the engine with its shared
// mailbox in reliable mode over a transport that drops, duplicates,
// corrupts, and reorders data-plane frames, and requires every concurrent
// query to still produce the exact reference answer with conserved flows.
func TestEngineReliableUnderMessageFaults(t *testing.T) {
	plan := faults.Plan{
		Seed: 0xc4a05,
		Msgs: []faults.MsgRule{
			{From: faults.Wildcard, To: faults.Wildcard, Kind: int(rt.KindMailbox),
				Drop: 0.08, Duplicate: 0.04, Corrupt: 0.04, Reorder: 0.20},
			{From: faults.Wildcard, To: faults.Wildcard, Kind: faults.Wildcard,
				Reorder: 0.10}, // control plane: reorder only (loss not tolerated there)
		},
	}
	e, edges, n := buildEngineFaulty(t, 8, 4, "2d",
		engine.Options{Reliable: true, RTOBase: time.Millisecond, RTOMax: 20 * time.Millisecond}, plan)
	defer e.Close()

	adj := ref.BuildAdj(edges, n)
	wantLv, _ := ref.BFS(adj, 0)
	wantLabels, wantCount := ref.Components(adj)

	bfsTk, err := e.Submit(engine.Spec{Algo: engine.AlgoBFS, Source: 0})
	if err != nil {
		t.Fatalf("Submit bfs: %v", err)
	}
	ccTk, err := e.Submit(engine.Spec{Algo: engine.AlgoCC})
	if err != nil {
		t.Fatalf("Submit cc: %v", err)
	}
	var wg sync.WaitGroup
	for _, tk := range []*engine.Ticket{bfsTk, ccTk} {
		wg.Add(1)
		go func() { defer wg.Done(); tk.Wait() }()
	}
	wg.Wait()

	bres, cres := bfsTk.Wait(), ccTk.Wait()
	if bres.Cancelled || cres.Cancelled {
		t.Fatal("query cancelled under recoverable faults")
	}
	for v := uint64(0); v < n; v++ {
		if bres.Levels[v] != wantLv[v] {
			t.Fatalf("bfs vertex %d: level %d under faults, reference %d", v, bres.Levels[v], wantLv[v])
		}
		if cres.Labels[v] != wantLabels[v] {
			t.Fatalf("cc vertex %d: label %d under faults, reference %d", v, cres.Labels[v], wantLabels[v])
		}
	}
	if cres.Components != wantCount {
		t.Fatalf("cc: %d components under faults, reference %d", cres.Components, wantCount)
	}
	checkFlows(t, bfsTk)
	checkFlows(t, ccTk)

	reg := e.Obs()
	if reg.Counter(obs.FaultInjected("drop")).Value() == 0 {
		t.Fatal("no drops injected; fault plan inert, test proved nothing")
	}
	if reg.PerRank(obs.MBRetransmits, 1).Total() == 0 {
		t.Error("drops injected but no retransmits recorded")
	}
}
