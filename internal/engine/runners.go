package engine

// Per-algorithm runner constructors: each builds the algorithm's rank state
// and a shared-mode visitor queue (core.NewQueueShared) over the engine's
// shared mailbox and the query's detector instance, seeds the traversal's
// initial visitors, and supplies the Finish gather. The embedded Queue
// provides Deliver/Step/LocalIdle/Cancel/Cancelled/PumpTermination/Stats.

import (
	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// newRunner dispatches on the query's algorithm.
func newRunner(r *rt.Rank, part *partition.Part, ghosts *core.GhostTable, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query, opts Options) runner {
	switch q.spec.Algo {
	case AlgoBFS:
		return newBFSRunner(r, part, ghosts, pager, box, det, q)
	case AlgoSSSP:
		return newSSSPRunner(r, part, ghosts, pager, box, det, q, opts.DisableBucketOrder)
	case AlgoCC:
		return newCCRunner(r, part, ghosts, pager, box, det, q)
	case AlgoKCore:
		return newKCoreRunner(r, part, pager, box, det, q)
	case AlgoBFSDO:
		return newDOBFSRunner(part, pager, box, det, q)
	case AlgoPageRank:
		return newPageRankRunner(r, part, pager, box, det, q)
	case AlgoTriangles:
		return newTriangleRunner(r, part, pager, box, det, q)
	default:
		panic("engine: unknown algorithm past Submit validation")
	}
}

// ghostCfg assembles a shared-queue config with hub filtering for the
// algorithms that declare ghost usage, plus the rank's out-of-core pager.
func ghostCfg(ghosts *core.GhostTable, pager core.RowPager) core.Config {
	return core.Config{Ghosts: ghosts, Pager: pager}
}

// gatherInto copies a per-vertex value from this rank's masters into the
// shared global array. Master ranges are disjoint across ranks, and every
// write happens before the rank's ranksDone increment, so waiters observing
// the done channel see a complete array.
func gatherInto[T any](out []T, part *partition.Part, get func(i int) T) {
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		i, _ := part.LocalIndex(graph.Vertex(v))
		out[v] = get(i)
	}
}

// --- BFS ---

type bfsRunner struct {
	*core.Queue[bfs.Visitor]
	st   *bfs.BFS
	part *partition.Part
	q    *query
}

func newBFSRunner(r *rt.Rank, part *partition.Part, ghosts *core.GhostTable, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	st := bfs.New(part)
	cfg := ghostCfg(ghosts, pager)
	if ghosts != nil {
		st.AttachGhosts(ghosts)
	}
	qu := core.NewQueueShared[bfs.Visitor](r, part, st, cfg, box, det, q.id)
	if cp := q.spec.Resume; cp != nil {
		// Resume: replay the checkpointed frontier onto fresh state. Every
		// reached master re-enters as a visitor carrying its checkpointed
		// level; PreVisit admits it (fresh state is Unreached, and levels are
		// monotone) and Visit re-expands its neighbors, so the traversal
		// continues outward from wherever the cancelled run stopped. The
		// interior is re-offered but immediately pruned by the level test —
		// coarse, but it costs one visitor per reached vertex, not a restart
		// of the whole traversal.
		lo, hi := part.Owners.MasterRange(part.Rank)
		for v := lo; v < hi; v++ {
			if lv := cp.Res.Levels[v]; lv != bfs.Unreached {
				qu.Push(bfs.Visitor{V: graph.Vertex(v), Length: lv, Parent: cp.Res.Parents[v]})
			}
		}
		if part.IsMaster(q.spec.Source) && cp.Res.Levels[q.spec.Source] == bfs.Unreached {
			// Checkpoint from a run cancelled before the source was settled:
			// fall back to a fresh start.
			qu.Push(bfs.Visitor{V: q.spec.Source, Length: 0, Parent: q.spec.Source})
		}
	} else if part.IsMaster(q.spec.Source) {
		qu.Push(bfs.Visitor{V: q.spec.Source, Length: 0, Parent: q.spec.Source})
	}
	return &bfsRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *bfsRunner) Finish() {
	gatherInto(rn.q.res.Levels, rn.part, func(i int) uint32 { return rn.st.Level[i] })
	gatherInto(rn.q.res.Parents, rn.part, func(i int) graph.Vertex { return rn.st.Parent[i] })
}

// --- SSSP ---

type ssspRunner struct {
	*core.Queue[sssp.Visitor]
	st   *sssp.SSSP
	part *partition.Part
	q    *query
}

func newSSSPRunner(r *rt.Rank, part *partition.Part, ghosts *core.GhostTable, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query, disableBucketOrder bool) runner {
	st := sssp.New(part, q.spec.WeightSeed)
	cfg := ghostCfg(ghosts, pager)
	cfg.DisableBucketOrder = disableBucketOrder
	if ghosts != nil {
		st.AttachGhosts(ghosts)
	}
	qu := core.NewQueueShared[sssp.Visitor](r, part, st, cfg, box, det, q.id)
	if cp := q.spec.Resume; cp != nil {
		// Same frontier-replay scheme as BFS, over tentative distances.
		// Distances in the checkpoint are upper bounds that only the relax
		// rule can lower, so replaying them is safe even if the cancelled run
		// had not converged them yet.
		lo, hi := part.Owners.MasterRange(part.Rank)
		for v := lo; v < hi; v++ {
			if d := cp.Res.Dist[v]; d != sssp.Unreached {
				qu.Push(sssp.Visitor{V: graph.Vertex(v), Dist: d, Parent: cp.Res.Parents[v]})
			}
		}
		if part.IsMaster(q.spec.Source) && cp.Res.Dist[q.spec.Source] == sssp.Unreached {
			qu.Push(sssp.Visitor{V: q.spec.Source, Dist: 0, Parent: q.spec.Source})
		}
	} else if part.IsMaster(q.spec.Source) {
		qu.Push(sssp.Visitor{V: q.spec.Source, Dist: 0, Parent: q.spec.Source})
	}
	return &ssspRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *ssspRunner) Finish() {
	gatherInto(rn.q.res.Dist, rn.part, func(i int) uint64 { return rn.st.Dist[i] })
	gatherInto(rn.q.res.Parents, rn.part, func(i int) graph.Vertex { return rn.st.Parent[i] })
}

// --- Connected components ---

type ccRunner struct {
	*core.Queue[cc.Visitor]
	st   *cc.CC
	part *partition.Part
	q    *query
}

func newCCRunner(r *rt.Rank, part *partition.Part, ghosts *core.GhostTable, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	st := cc.New(part)
	cfg := ghostCfg(ghosts, pager)
	if ghosts != nil {
		st.AttachGhosts(ghosts)
	}
	qu := core.NewQueueShared[cc.Visitor](r, part, st, cfg, box, det, q.id)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		lbl := graph.Vertex(v)
		if cp := q.spec.Resume; cp != nil && cp.Res.Labels[v] < lbl {
			// Resume: start each master from its checkpointed label instead
			// of its own id. Labels only decrease toward the component
			// minimum, so any partial label is a valid (better) start.
			lbl = cp.Res.Labels[v]
		}
		qu.Push(cc.Visitor{V: graph.Vertex(v), Label: lbl})
	}
	return &ccRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *ccRunner) Finish() {
	gatherInto(rn.q.res.Labels, rn.part, func(i int) graph.Vertex { return rn.st.Label[i] })
	// Component count: a master whose label is its own id represents one
	// component. Accumulate atomically instead of AllReduce (see runner doc).
	lo, hi := rn.part.Owners.MasterRange(rn.part.Rank)
	var local uint64
	for v := lo; v < hi; v++ {
		i, _ := rn.part.LocalIndex(graph.Vertex(v))
		if rn.st.Label[i] == graph.Vertex(v) {
			local++
		}
	}
	rn.q.accum.Add(local)
}

// --- K-core ---

type kcoreRunner struct {
	*core.Queue[kcore.Visitor]
	st   *kcore.KCore
	part *partition.Part
	q    *query
}

func newKCoreRunner(r *rt.Rank, part *partition.Part, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	st := kcore.New(part, q.spec.K)
	// K-core needs precise removal counts, so no ghost filtering (§IV-B).
	qu := core.NewQueueShared[kcore.Visitor](r, part, st, core.Config{Pager: pager}, box, det, q.id)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		qu.Push(kcore.Visitor{V: graph.Vertex(v)})
	}
	return &kcoreRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *kcoreRunner) Finish() {
	gatherInto(rn.q.res.InCore, rn.part, func(i int) bool { return rn.st.Alive[i] })
	rn.q.accum.Add(rn.st.LocalCoreSize())
}

// --- Direction-optimizing BFS ---

// doBFSRunner adapts the bfs.DO state machine — a counted peer-message
// protocol rather than a visitor queue — to the engine's runner face. Sends
// travel through the shared mailbox under the query's tag, so the rank-level
// flow counter and the per-query detector account for them exactly like
// visitor records; quiescence is reached when every rank has merged the
// empty frontier and all level messages have drained.
type doBFSRunner struct {
	d         *bfs.DO
	det       *termination.Detector
	part      *partition.Part
	q         *query
	cancelled bool
	stats     core.Stats
}

func newDOBFSRunner(part *partition.Part, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	send := func(dest int, payload []byte) { box.SendTagged(dest, q.id, payload) }
	var hint bfs.RowHinter
	if pager != nil {
		hint = pager // bottom-up unvisited-row scans prefetch through the pager
	}
	d := bfs.NewDO(part, q.spec.Source, send, hint)
	d.Start()
	return &doBFSRunner{d: d, det: det, part: part, q: q}
}

func (rn *doBFSRunner) Deliver(rec mailbox.Record) {
	if rn.cancelled {
		return // drain: delivery already counted, state no longer advances
	}
	rn.d.Handle(rec.Payload)
}

func (rn *doBFSRunner) Step(batch int) bool {
	progress := false
	for i := 0; i < batch && rn.d.TryAdvance(); i++ {
		progress = true
	}
	return progress
}

// Unpark: the DO machine never parks visitors — bottom-up scans hint the
// pager ahead of reads and then fault synchronously on the rare miss.
func (rn *doBFSRunner) Unpark(pages []int64) bool { return false }

func (rn *doBFSRunner) LocalIdle() bool { return rn.cancelled || rn.d.Idle() }

func (rn *doBFSRunner) Cancel() {
	rn.cancelled = true
	rn.d.Abort()
}

func (rn *doBFSRunner) Cancelled() bool { return rn.cancelled }

func (rn *doBFSRunner) PumpTermination(localIdle bool) bool {
	if !rn.det.Pump(localIdle) {
		return false
	}
	rn.stats.DetectorWaves = rn.det.Waves
	rn.stats.DetectorSent = rn.det.Sent()
	rn.stats.DetectorReceived = rn.det.Received()
	return true
}

func (rn *doBFSRunner) Stats() core.Stats { return rn.stats }

func (rn *doBFSRunner) Finish() {
	gatherInto(rn.q.res.Levels, rn.part, func(i int) uint32 { return rn.d.Level[i] })
	gatherInto(rn.q.res.Parents, rn.part, func(i int) graph.Vertex { return rn.d.Parent[i] })
}

// --- PageRank ---

type pagerankRunner struct {
	*core.Queue[pagerank.Visitor]
	st   *pagerank.PR
	part *partition.Part
	q    *query
}

func newPageRankRunner(r *rt.Rank, part *partition.Part, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	st := pagerank.New(part, q.spec.Iters)
	// Counted completion needs every contribution delivered: no ghost
	// filtering (the algorithm declares no ghost hook anyway).
	qu := core.NewQueueShared[pagerank.Visitor](r, part, st, core.Config{Pager: pager}, box, det, q.id)
	st.Seed(qu)
	return &pagerankRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *pagerankRunner) Finish() {
	gatherInto(rn.q.res.Ranks, rn.part, func(i int) uint64 { return rn.st.Rank[i] })
}

// --- Triangle counting ---

type triangleRunner struct {
	*core.Queue[triangle.Visitor]
	st   *triangle.Triangle
	part *partition.Part
	q    *query
}

func newTriangleRunner(r *rt.Rank, part *partition.Part, pager core.RowPager,
	box *mailbox.Box, det *termination.Detector, q *query) runner {
	st := triangle.New(part)
	// Triangle counting needs precise adjacency membership: no ghosts (§VI-C).
	qu := core.NewQueueShared[triangle.Visitor](r, part, st, core.Config{Pager: pager}, box, det, q.id)
	lo, hi := part.Owners.MasterRange(part.Rank)
	for v := lo; v < hi; v++ {
		qu.Push(triangle.Visitor{V: graph.Vertex(v), Second: graph.Nil, Third: graph.Nil})
	}
	return &triangleRunner{Queue: qu, st: st, part: part, q: q}
}

func (rn *triangleRunner) Finish() {
	// The classic path all-reduces local tallies; engine queries quiesce in
	// different orders on different ranks, so accumulate atomically instead.
	var local uint64
	for _, c := range rn.st.Count {
		local += c
	}
	rn.q.accum.Add(local)
}
