// Package engine multiplexes many concurrent graph traversals over one
// resident partitioned graph.
//
// The paper's framework answers one query at a time: build the graph once,
// then run each traversal as a collective phase across the whole machine. A
// query-serving deployment inverts the workload — the graph stays resident
// and queries arrive continuously — so serializing traversals wastes exactly
// the resource the asynchronous design exists to exploit: the idle gaps
// where a rank waits on in-flight visitors or termination waves of a single
// traversal. The engine interleaves many traversals over the shared message
// plane so one query's latency gaps are filled with another query's visitor
// work.
//
// Mechanics. Every visitor record is stamped with a compact query ID in the
// mailbox record header (mailbox.SendTagged); each rank runs one long-lived
// loop that polls the single shared mailbox and demultiplexes delivered
// records into per-query visitor queues (core.NewQueueShared). Termination is
// detected per query: each in-flight query gets its own four-counter detector
// instance (termination.Mux), fed by a tag-aware flow counter registered on
// the shared mailbox, so the S/R conservation argument of §V holds
// independently per query ID. No collectives run on engine paths — queries
// quiesce in different orders on different ranks, so cross-rank aggregates
// (component counts, core sizes) accumulate through atomics on the shared
// query object instead of AllReduce.
//
// Lifecycle. Submit admits a query if an in-flight slot is free, parks it in
// a bounded wait queue otherwise, and rejects with ErrRejected beyond that —
// the backpressure signal a serving front end needs. Cancellation (explicit
// or by deadline) flips the query's rank-local queues into drain mode: tagged
// records still in flight are received and counted but not applied, so the
// query runs to ordinary quiescence and retires its ID with no stranded
// records anywhere in the message plane. Close stops admission, waits for
// every outstanding query, then shuts the rank loops down.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/pagerank"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/core"
	"havoqgt/internal/graph"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/obs"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// Admission and shutdown errors. ErrRejected is the distinct backpressure
// signal: the wait queue is full and the caller should retry later or shed
// load.
var (
	ErrRejected = errors.New("engine: admission rejected: wait queue full")
	ErrClosed   = errors.New("engine: closed")
)

// ErrNotResumable rejects Spec.Resume for algorithms whose rank state is not
// a monotone per-vertex lower bound (see Algo.Resumable). It is a typed
// sentinel so retry ladders can distinguish "this query can never resume"
// (fall back to a fresh start) from transient admission errors.
var ErrNotResumable = errors.New("engine: algorithm is not resumable")

// Algo selects the traversal a query runs.
type Algo string

// Supported query algorithms.
const (
	AlgoBFS       Algo = "bfs"
	AlgoSSSP      Algo = "sssp"
	AlgoCC        Algo = "cc"
	AlgoKCore     Algo = "kcore"
	AlgoBFSDO     Algo = "bfs_do"    // direction-optimizing BFS (levels identical to bfs)
	AlgoPageRank  Algo = "pagerank"  // fixed-point PageRank (Spec.Iters)
	AlgoTriangles Algo = "triangles" // exact triangle count
)

// Resumable is the checkpoint/resume capability flag: true when the
// algorithm's per-vertex state is monotone (levels, distances, and labels
// only ever improve toward the fixpoint), so a cancelled query's partial
// gather is a consistent lower bound a resumed run can re-seed from.
//
// The others fail the test for structural reasons, not as special cases:
// k-core's interlocked removal counts would double-remove edges on replay;
// pagerank ranks move both ways between iterations; the direction-optimizing
// BFS and triangle counting hold mid-protocol wavefront state (frontier
// bitmaps, partial wedges) that a fresh engine cannot re-enter. Everything
// that gates on resumability — Spec.Resume validation, Ticket.Checkpoint,
// retry ladders — consults this one flag.
func (a Algo) Resumable() bool {
	switch a {
	case AlgoBFS, AlgoSSSP, AlgoCC:
		return true
	}
	return false
}

// Spec describes one query.
type Spec struct {
	Algo       Algo
	Source     graph.Vertex  // bfs, bfs_do, sssp
	WeightSeed uint64        // sssp
	K          uint32        // kcore (>= 1)
	Iters      uint32        // pagerank (0 = pagerank.DefaultIters, capped at MaxIters)
	Deadline   time.Duration // 0 = none; expiry cancels the query
	// Resume, if non-nil, seeds the query from a checkpoint taken off an
	// earlier cancelled run of the same traversal (same algo, source, and
	// weight seed) instead of from scratch. Only algorithms with
	// Algo.Resumable may resume. See Ticket.Checkpoint.
	Resume *Checkpoint
}

// Checkpoint is a coarse query checkpoint: the partial per-vertex state a
// cancelled query had reached when it drained. Only algorithms with the
// Algo.Resumable capability produce one — their monotone per-vertex values
// make any partial gather a consistent lower bound of work already done, and
// a resumed query re-seeds its frontier from it rather than from the source
// alone.
type Checkpoint struct {
	Spec Spec    // the originating query's spec (Resume cleared)
	Res  *Result // partial result arrays; Cancelled is true
}

// ResumeSpec returns a Spec that resumes the checkpointed traversal, with the
// given deadline for the new attempt.
func (cp *Checkpoint) ResumeSpec(deadline time.Duration) Spec {
	spec := cp.Spec
	spec.Deadline = deadline
	spec.Resume = cp
	return spec
}

// Result is one completed query's output. Only the fields of the query's
// algorithm are populated. If Cancelled is true the per-vertex arrays are
// partial — every rank gathered the monotone state it had reached when it
// stopped applying visitors — and must not be interpreted as a finished
// traversal; they are, however, a valid checkpoint (see Ticket.Checkpoint),
// because levels/distances/labels only ever improve toward the fixpoint.
type Result struct {
	// BFS.
	Levels []uint32 // bfs.Unreached where not reached

	// SSSP.
	Dist []uint64 // sssp.Unreached where not reached

	// BFS and SSSP.
	Parents []graph.Vertex

	// Connected components.
	Labels     []graph.Vertex
	Components uint64

	// K-core.
	InCore   []bool
	CoreSize uint64

	// PageRank: per-vertex fixed-point ranks (scaled by ref.PRScale).
	Ranks []uint64

	// Triangle counting.
	Triangles uint64

	Cancelled bool
	// Waves is the number of termination-detection waves the query's root
	// detector completed.
	Waves uint64
}

// FlowCell is one rank's per-query flow account, exposed for invariant
// checking (internal/check.QueryConservation): end-to-end mailbox record
// counts under the query's tag and the termination detector's monotone
// counters at quiescence.
type FlowCell struct {
	Sent        uint64 // records sent under this query's tag on this rank
	Delivered   uint64 // records delivered under this query's tag on this rank
	DetSent     uint64 // detector S at quiescence
	DetReceived uint64 // detector R at quiescence
}

// Options tune the engine.
type Options struct {
	// MaxInFlight bounds concurrently executing traversals (default 8).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an in-flight slot (default 64).
	MaxQueue int
	// StepBatch bounds visitors executed per query per rank-loop iteration,
	// the interleaving granularity (default 128).
	StepBatch int
	// FlushBytes overrides the shared mailbox aggregation threshold (0 =
	// mailbox default).
	FlushBytes int
	// Reliable runs the shared mailbox with sequence-numbered, acked,
	// retransmitted delivery (mailbox.WithReliable), so the engine survives
	// message drop/duplication/corruption on the data plane.
	Reliable bool
	// RTOBase/RTOMax bound the reliable layer's retransmission backoff
	// (zero = mailbox defaults). Only meaningful with Reliable.
	RTOBase, RTOMax time.Duration
	// DisableBucketOrder forces SSSP runners onto the binary-heap local
	// scheduler instead of the bucketed delta-stepping calendar (a
	// benchmarking knob; results are identical either way).
	DisableBucketOrder bool
}

func (o Options) normalized() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.StepBatch <= 0 {
		o.StepBatch = 128
	}
	return o
}

// Config binds an engine to a built machine and its partitioned graph.
type Config struct {
	Machine *rt.Machine
	Parts   []*partition.Part
	Ghosts  []*core.GhostTable // per rank; nil entries disable hub filtering
	// Topology names the shared mailbox routing ("1d" default, "2d", "3d").
	Topology string
	// Pagers, when non-nil, marks the partitions' CSR targets as out-of-core
	// (one entry per rank, indexed like Parts; internal/ooc builds them).
	// Rank loops then park visits on missing adjacency pages, drain fetch
	// completions, and unpark — the latency-hiding serving mode. A nil entry
	// serves that rank fully resident.
	Pagers []core.RowPager
}

// ctlKind discriminates control-log events.
type ctlKind uint8

const (
	evStart ctlKind = iota
	evCancel
	evAbort
	evShutdown
)

// ctlEvent is one entry of the engine's append-only control log — the only
// channel from the submitting side into the rank goroutines. Ranks replay
// the log in order through private cursors, which gives every rank the same
// totally ordered view of query admission, cancellation, and shutdown
// without any collective operation.
type ctlEvent struct {
	kind ctlKind
	q    *query // evStart, evCancel; nil for evShutdown
}

// ctlLog is the shared append-only event log. Appends happen under the
// exclusive lock and then publish the new length with an atomic store; rank
// loops spin on the atomic (no lock) and take the read lock only when the
// published length passed their cursor. Entries below the published length
// are immutable.
type ctlLog struct {
	mu     sync.RWMutex
	events []ctlEvent
	length atomic.Uint64
}

func (l *ctlLog) append(ev ctlEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.length.Store(uint64(len(l.events)))
	l.mu.Unlock()
}

// from returns a copy of the events at index >= cursor.
func (l *ctlLog) from(cursor int) []ctlEvent {
	if l.length.Load() <= uint64(cursor) {
		return nil
	}
	l.mu.RLock()
	out := append([]ctlEvent(nil), l.events[cursor:]...)
	l.mu.RUnlock()
	return out
}

// query is the shared per-query object. Ranks write disjoint master ranges
// of the Result arrays and accumulate cross-rank scalars through atomics;
// the final rank to quiesce closes done, which publishes every earlier write
// to waiters.
type query struct {
	id        uint32
	spec      Spec
	res       *Result
	flow      []FlowCell // per rank, each written by its own rank pre-done
	accum     atomic.Uint64
	cancelled atomic.Bool
	cause     atomic.Int32 // why cancelled: causeExplicit, causeDeadline, causeAborted
	waiting   bool         // guarded by Engine.mu: parked in the wait queue
	aborted   bool         // guarded by Engine.mu: evAbort already appended
	ranksDone atomic.Int32
	done      chan struct{}
	submitted time.Time
	deadline  *time.Timer
}

// Cancellation causes, recorded once per query under Engine.mu by the first
// effective cancel and mapped to context errors by Ticket.Err.
const (
	causeNone int32 = iota
	causeExplicit
	causeDeadline
	causeAborted
)

// Ticket is the caller's handle on a submitted query.
type Ticket struct {
	e *Engine
	q *query
}

// ID returns the query's compact tag (unique per engine lifetime).
func (t *Ticket) ID() uint32 { return t.q.id }

// Done is closed when the query has completed (or been cancelled) on every
// rank.
func (t *Ticket) Done() <-chan struct{} { return t.q.done }

// Wait blocks until completion and returns the result.
func (t *Ticket) Wait() *Result {
	<-t.q.done
	return t.q.res
}

// Err reports how the query ended: nil for a clean completion (or a query
// still running), context.Canceled after an explicit Cancel, and
// context.DeadlineExceeded after the spec deadline (or a WaitCtx deadline)
// expired. The context sentinels make the engine's cancellation legible to
// standard error handling (errors.Is) without an engine-specific taxonomy.
func (t *Ticket) Err() error {
	switch t.q.cause.Load() {
	case causeExplicit, causeAborted:
		return context.Canceled
	case causeDeadline:
		return context.DeadlineExceeded
	}
	return nil
}

// WaitCtx waits for the query, cancelling it if ctx ends first. Unlike a bare
// select on Done, it does not abandon the query on ctx expiry: cancellation
// flips the query into drain mode and WaitCtx waits for that drain to finish
// (bounded by quiescence, not by the traversal), so the returned Result —
// partial on cancellation — is fully published and checkpointable. The error
// is Err()'s verdict: nil, context.Canceled, or context.DeadlineExceeded.
func (t *Ticket) WaitCtx(ctx context.Context) (*Result, error) {
	select {
	case <-t.q.done:
	case <-ctx.Done():
		cause := causeExplicit
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			cause = causeDeadline
		}
		t.cancel(cause)
		<-t.q.done
	}
	return t.q.res, t.Err()
}

// Checkpoint returns the cancelled query's partial state for resumption, or
// nil if the query completed cleanly (nothing to resume), has not finished
// draining yet, or ran an algorithm without the resume capability (see
// Algo.Resumable).
func (t *Ticket) Checkpoint() *Checkpoint {
	select {
	case <-t.q.done:
	default:
		return nil
	}
	if !t.q.res.Cancelled || !t.q.spec.Algo.Resumable() {
		return nil
	}
	spec := t.q.spec
	spec.Resume = nil
	spec.Deadline = 0
	return &Checkpoint{Spec: spec, Res: t.q.res}
}

// Flows returns the per-rank flow accounts. Valid only after Done.
func (t *Ticket) Flows() []FlowCell { return t.q.flow }

// Cancel stops the query: an in-flight query drains its remaining tagged
// records without applying them and still quiesces cleanly; a waiting query
// completes immediately without starting. Cancelling a completed query is a
// no-op. Note a cancel racing completion may mark a fully computed result
// Cancelled.
func (t *Ticket) Cancel() { t.cancel(causeExplicit) }

// cancel is Cancel with an attributed cause. Only the first effective cancel
// records its cause (later ones are no-ops), so Err is stable once set.
func (t *Ticket) cancel(cause int32) {
	e, q := t.e, t.q
	e.mu.Lock()
	select {
	case <-q.done:
		e.mu.Unlock()
		return
	default:
	}
	if q.cancelled.Swap(true) {
		e.mu.Unlock()
		return
	}
	q.cause.Store(cause)
	e.obsCancelled.Inc()
	if cause == causeDeadline {
		e.obsDeadline.Inc()
	}
	if q.waiting {
		// Never started: remove from the wait queue and complete in place.
		for i, w := range e.waitq {
			if w == q {
				e.waitq = append(e.waitq[:i], e.waitq[i+1:]...)
				break
			}
		}
		q.waiting = false
		e.obsWaiting.Set(int64(len(e.waitq)))
		e.finishLocked(q)
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	e.log.append(ctlEvent{kind: evCancel, q: q})
}

// Abort forcibly retires the query on every local rank without waiting for
// global quiescence. Cancel drains cooperatively: in-flight records are still
// received (conservation) and termination waves still cross every rank of the
// machine — exactly what cannot happen once a remote worker of a cluster
// machine is dead. Abort is the process-failure hook: it marks the query
// cancelled, force-finishes it on each local rank (gathering the monotone
// partial state, same as a drained cancel), and retires its mailbox tag and
// detector instance so stragglers from dead or surviving peers are dropped
// instead of parked forever. The flow-conservation ledger for an aborted
// query is void by construction. Aborting a waiting or completed query
// behaves like Cancel; Err reports context.Canceled.
func (t *Ticket) Abort() {
	e, q := t.e, t.q
	e.mu.Lock()
	select {
	case <-q.done:
		e.mu.Unlock()
		return
	default:
	}
	if !q.cancelled.Swap(true) {
		q.cause.Store(causeAborted)
		e.obsCancelled.Inc()
	}
	if q.waiting {
		// Never started: remove from the wait queue and complete in place.
		for i, w := range e.waitq {
			if w == q {
				e.waitq = append(e.waitq[:i], e.waitq[i+1:]...)
				break
			}
		}
		q.waiting = false
		e.obsWaiting.Set(int64(len(e.waitq)))
		e.finishLocked(q)
		e.mu.Unlock()
		return
	}
	if q.aborted {
		// A second Abort (or one racing a Cancel already escalated) must not
		// double-append: ranks count completions once per query.
		e.mu.Unlock()
		return
	}
	q.aborted = true
	e.mu.Unlock()
	e.log.append(ctlEvent{kind: evAbort, q: q})
}

// Engine executes queries over one resident graph. Start it with Start;
// submit from any goroutine.
type Engine struct {
	cfg  Config
	opts Options
	n    uint64 // vertices
	p    int    // ranks (global: the whole cluster on a cluster machine)
	// localRanks is how many ranks this process hosts (== p in-process). A
	// query completes HERE when its ranksDone reaches localRanks; on a
	// cluster worker the coordinator aggregates per-process completions.
	localRanks int

	mu          sync.Mutex
	closed      bool
	nextID      uint32
	inflight    int
	waitq       []*query
	outstanding int           // admitted or waiting, not yet done
	drained     chan struct{} // closed when closed && outstanding == 0

	log     ctlLog
	runDone chan struct{} // rank loops exited

	obsSubmitted *obs.Counter
	obsCompleted *obs.Counter
	obsCancelled *obs.Counter
	obsRejected  *obs.Counter
	obsInFlight  *obs.Gauge
	obsWaiting   *obs.Gauge
	obsLatency   *obs.Histogram
	obsDeadline  *obs.Counter
	obsResumed   *obs.Counter
}

// Start launches the engine's rank loops on the machine. The machine must be
// otherwise idle (no concurrent Run) until Close returns.
func Start(cfg Config, opts Options) (*Engine, error) {
	if cfg.Machine == nil || len(cfg.Parts) != cfg.Machine.Size() {
		return nil, errors.New("engine: config needs a machine and one part per rank")
	}
	// On a cluster machine only the locally hosted ranks carry partitions;
	// remote slots stay nil. Every local rank must have one.
	lo, hi := cfg.Machine.LocalRange()
	for r := lo; r < hi; r++ {
		if cfg.Parts[r] == nil {
			return nil, fmt.Errorf("engine: config missing the partition for local rank %d", r)
		}
	}
	if cfg.Pagers != nil && len(cfg.Pagers) != cfg.Machine.Size() {
		return nil, errors.New("engine: config needs one pager slot per rank (nil entries allowed)")
	}
	if cfg.Topology == "" {
		cfg.Topology = "1d"
	}
	if _, err := mailbox.ByName(cfg.Topology, cfg.Machine.Size()); err != nil {
		return nil, err
	}
	reg := cfg.Machine.Obs()
	e := &Engine{
		cfg:          cfg,
		opts:         opts.normalized(),
		n:            cfg.Parts[lo].NumVertices,
		p:            cfg.Machine.Size(),
		localRanks:   cfg.Machine.LocalSize(),
		nextID:       1, // 0 stays reserved for the classic single-traversal path
		drained:      make(chan struct{}),
		runDone:      make(chan struct{}),
		obsSubmitted: reg.Counter(obs.EngineSubmitted),
		obsCompleted: reg.Counter(obs.EngineCompleted),
		obsCancelled: reg.Counter(obs.EngineCancelled),
		obsRejected:  reg.Counter(obs.EngineRejected),
		obsInFlight:  reg.Gauge(obs.EngineInFlight),
		obsWaiting:   reg.Gauge(obs.EngineWaiting),
		obsLatency:   reg.Histogram(obs.EngineQueryNS),
		obsDeadline:  reg.Counter(obs.EngineDeadlineExpired),
		obsResumed:   reg.Counter(obs.EngineResumed),
	}
	go func() {
		defer close(e.runDone)
		e.cfg.Machine.Run(e.rankLoop)
	}()
	return e, nil
}

// NumVertices returns the resident graph's vertex count.
func (e *Engine) NumVertices() uint64 { return e.n }

// Obs returns the machine's metrics registry (for /stats endpoints).
func (e *Engine) Obs() *obs.Registry { return e.cfg.Machine.Obs() }

// validate rejects malformed specs before admission.
func (e *Engine) validate(spec Spec) error {
	switch spec.Algo {
	case AlgoBFS, AlgoSSSP, AlgoBFSDO:
		if uint64(spec.Source) >= e.n {
			return fmt.Errorf("engine: source %d out of range [0, %d)", spec.Source, e.n)
		}
	case AlgoCC, AlgoTriangles:
	case AlgoKCore:
		if spec.K < 1 {
			return errors.New("engine: kcore needs k >= 1")
		}
	case AlgoPageRank:
		if spec.Iters > pagerank.MaxIters {
			return fmt.Errorf("engine: pagerank iters %d exceeds max %d", spec.Iters, pagerank.MaxIters)
		}
	default:
		return fmt.Errorf("engine: unknown algorithm %q", spec.Algo)
	}
	if cp := spec.Resume; cp != nil {
		if !spec.Algo.Resumable() {
			return fmt.Errorf("%w: %s", ErrNotResumable, spec.Algo)
		}
		if cp.Res == nil {
			return errors.New("engine: resume checkpoint has no result state")
		}
		if cp.Spec.Algo != spec.Algo || cp.Spec.Source != spec.Source ||
			cp.Spec.WeightSeed != spec.WeightSeed {
			return errors.New("engine: resume checkpoint is from an incompatible query")
		}
		switch spec.Algo {
		case AlgoBFS:
			if uint64(len(cp.Res.Levels)) != e.n || uint64(len(cp.Res.Parents)) != e.n {
				return errors.New("engine: resume checkpoint sized for a different graph")
			}
		case AlgoSSSP:
			if uint64(len(cp.Res.Dist)) != e.n || uint64(len(cp.Res.Parents)) != e.n {
				return errors.New("engine: resume checkpoint sized for a different graph")
			}
		case AlgoCC:
			if uint64(len(cp.Res.Labels)) != e.n {
				return errors.New("engine: resume checkpoint sized for a different graph")
			}
		}
	}
	return nil
}

// Submit admits, queues, or rejects a query. A non-nil Ticket is returned
// exactly when err is nil.
func (e *Engine) Submit(spec Spec) (*Ticket, error) {
	if err := e.validate(spec); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if uint64(e.nextID) > uint64(termination.MaxID) {
		e.mu.Unlock()
		return nil, errors.New("engine: query id space exhausted")
	}
	if e.inflight >= e.opts.MaxInFlight && len(e.waitq) >= e.opts.MaxQueue {
		e.obsRejected.Inc()
		e.mu.Unlock()
		return nil, ErrRejected
	}
	q := &query{
		id:        e.nextID,
		spec:      spec,
		res:       newResult(spec, e.n),
		flow:      make([]FlowCell, e.p),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	e.nextID++
	e.outstanding++
	e.obsSubmitted.Inc()
	if spec.Resume != nil {
		e.obsResumed.Inc()
	}
	t := &Ticket{e: e, q: q}
	if spec.Deadline > 0 {
		// Arm the timer before the start event is visible to any rank: a
		// fast query may complete (and stop the timer) the moment the event
		// publishes. AfterFunc fires asynchronously, so cancel's own lock
		// acquisition cannot deadlock here.
		q.deadline = time.AfterFunc(spec.Deadline, func() { t.cancel(causeDeadline) })
	}
	if e.inflight < e.opts.MaxInFlight {
		e.inflight++
		e.obsInFlight.Set(int64(e.inflight))
		e.log.append(ctlEvent{kind: evStart, q: q})
	} else {
		q.waiting = true
		e.waitq = append(e.waitq, q)
		e.obsWaiting.Set(int64(len(e.waitq)))
	}
	e.mu.Unlock()
	return t, nil
}

// newResult allocates the algorithm's output arrays, initialized to the
// traversal's "nothing known" values (Unreached levels/distances, own-id
// labels) rather than zero. A completed query overwrites every entry through
// the per-rank gathers, but a query cancelled before it ever started skips
// them — and its result must still be a valid (empty) checkpoint, not an
// array of spurious level-0 vertices.
func newResult(spec Spec, n uint64) *Result {
	res := &Result{}
	switch spec.Algo {
	case AlgoBFS, AlgoBFSDO:
		res.Levels = make([]uint32, n)
		for i := range res.Levels {
			res.Levels[i] = bfs.Unreached
		}
		res.Parents = make([]graph.Vertex, n)
	case AlgoSSSP:
		res.Dist = make([]uint64, n)
		for i := range res.Dist {
			res.Dist[i] = sssp.Unreached
		}
		res.Parents = make([]graph.Vertex, n)
	case AlgoCC:
		res.Labels = make([]graph.Vertex, n)
		for i := range res.Labels {
			res.Labels[i] = graph.Vertex(i)
		}
	case AlgoKCore:
		res.InCore = make([]bool, n)
	case AlgoPageRank:
		// Iteration-0 value (uniform 1/n), the fixed-point starting mass —
		// matching what a query cancelled before any iteration would mean.
		res.Ranks = make([]uint64, n)
		for i := range res.Ranks {
			res.Ranks[i] = ref.PRScale / n
		}
	}
	return res
}

// completeQuery runs on the last rank to quiesce a started query: publish
// scalar aggregates, close done, release the slot, and admit the next waiter.
func (e *Engine) completeQuery(q *query) {
	q.res.Cancelled = q.cancelled.Load()
	switch q.spec.Algo {
	case AlgoCC:
		q.res.Components = q.accum.Load()
	case AlgoKCore:
		q.res.CoreSize = q.accum.Load()
	case AlgoTriangles:
		q.res.Triangles = q.accum.Load()
	}
	e.mu.Lock()
	e.inflight--
	e.obsInFlight.Set(int64(e.inflight))
	e.admitLocked()
	e.finishLocked(q)
	e.mu.Unlock()
}

// finishLocked retires a query (started or not): latency accounting, done
// close, drained signalling. Caller holds e.mu.
func (e *Engine) finishLocked(q *query) {
	if q.deadline != nil {
		q.deadline.Stop()
	}
	e.obsLatency.Observe(uint64(time.Since(q.submitted)))
	if q.cancelled.Load() {
		q.res.Cancelled = true
	} else {
		e.obsCompleted.Inc()
	}
	close(q.done)
	e.outstanding--
	if e.closed && e.outstanding == 0 {
		close(e.drained)
	}
}

// admitLocked starts the next waiting query if a slot is free. Caller holds
// e.mu.
func (e *Engine) admitLocked() {
	for e.inflight < e.opts.MaxInFlight && len(e.waitq) > 0 {
		q := e.waitq[0]
		e.waitq = e.waitq[1:]
		q.waiting = false
		e.obsWaiting.Set(int64(len(e.waitq)))
		e.inflight++
		e.obsInFlight.Set(int64(e.inflight))
		e.log.append(ctlEvent{kind: evStart, q: q})
		return
	}
	e.obsWaiting.Set(int64(len(e.waitq)))
}

// Close stops admission, waits for every outstanding query to finish, then
// shuts the rank loops down. Safe to call more than once.
func (e *Engine) Close() error {
	e.mu.Lock()
	first := !e.closed
	if first {
		e.closed = true
		if e.outstanding == 0 {
			close(e.drained)
		}
	}
	e.mu.Unlock()
	<-e.drained
	if first {
		e.log.append(ctlEvent{kind: evShutdown})
	}
	<-e.runDone
	return nil
}
