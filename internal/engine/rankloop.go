package engine

import (
	"runtime"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
)

// flowCell accumulates one tag's end-to-end record counts on one rank. Plain
// integers: FlowCounter callbacks run only on the owning rank's goroutine.
type flowCell struct{ sent, received uint64 }

// rankFlows is the tag-aware FlowCounter registered on the rank's shared
// mailbox. Cells outlive detector creation — a record can be delivered (and
// counted) before this rank has processed the query's start event — and the
// running query later syncs cell deltas into its detector.
type rankFlows struct{ cells map[uint32]*flowCell }

func newRankFlows() *rankFlows { return &rankFlows{cells: make(map[uint32]*flowCell)} }

func (f *rankFlows) cell(tag uint32) *flowCell {
	c := f.cells[tag]
	if c == nil {
		c = &flowCell{}
		f.cells[tag] = c
	}
	return c
}

func (f *rankFlows) CountSent(tag uint32, n uint64)     { f.cell(tag).sent += n }
func (f *rankFlows) CountReceived(tag uint32, n uint64) { f.cell(tag).received += n }

// runner is the algorithm-erased face of one query's core.Queue on one rank
// (Queue is generic in its visitor type; the engine interleaves queries of
// different visitor types in one loop).
type runner interface {
	Deliver(rec mailbox.Record)
	Step(batch int) bool
	// Unpark re-queues visitors parked on the given adjacency pages (out-of-
	// core mode; a no-op runner-side when nothing is parked).
	Unpark(pages []int64) bool
	LocalIdle() bool
	Cancel()
	Cancelled() bool
	PumpTermination(localIdle bool) bool
	Stats() core.Stats
	// Finish gathers this rank's master-range results into the shared query
	// object (disjoint writes) and accumulates cross-rank scalars through
	// atomics — never collectives, which would deadlock across queries
	// quiescing in different orders on different ranks.
	Finish()
}

// runningQuery is one in-flight query's rank-local execution state.
type runningQuery struct {
	q    *query
	run  runner
	det  *termination.Detector
	cell *flowCell
	// Counter values already synced into the detector.
	syncedS, syncedR uint64
}

// syncFlows feeds the cell's growth since the last sync into the detector.
func (rq *runningQuery) syncFlows() {
	if d := rq.cell.sent - rq.syncedS; d > 0 {
		rq.det.CountSent(d)
		rq.syncedS = rq.cell.sent
	}
	if d := rq.cell.received - rq.syncedR; d > 0 {
		rq.det.CountReceived(d)
		rq.syncedR = rq.cell.received
	}
}

// rankState is one rank's engine loop state. Strictly rank-confined.
type rankState struct {
	e     *Engine
	box   *mailbox.Box
	mux   *termination.Mux
	flows *rankFlows
	// pager is this rank's out-of-core fetch engine (nil = fully resident).
	pager core.RowPager
	// active maps query ID -> running query.
	active map[uint32]*runningQuery
	// pending buffers records whose query this rank has not started yet: a
	// fast rank can seed visitors (and the mailbox can deliver them here)
	// before this rank's control-log cursor reaches the start event.
	pending map[uint32][]mailbox.Record
	// dead holds force-aborted query IDs: stragglers for these tags (from
	// peers that had not aborted yet) are dropped at the demux instead of
	// parked in pending forever. IDs never recycle, so entries are permanent
	// tombstones, one per aborted query.
	dead   map[uint32]struct{}
	cursor int // control-log position
}

// rankLoop is the long-lived per-rank executor: replay control events, poll
// the shared mailbox, demultiplex records to their queries, give every
// in-flight query a slice of visitor execution, and pump every query's
// termination detector. Exits after the shutdown event once no query is
// active on this rank.
func (e *Engine) rankLoop(r *rt.Rank) {
	topo, _ := mailbox.ByName(e.cfg.Topology, r.Size())
	var boxOpts []mailbox.Option
	if e.opts.FlushBytes > 0 {
		boxOpts = append(boxOpts, mailbox.WithFlushBytes(e.opts.FlushBytes))
	}
	if e.opts.Reliable {
		boxOpts = append(boxOpts, mailbox.WithReliable(),
			mailbox.WithRTO(e.opts.RTOBase, e.opts.RTOMax))
	}
	flows := newRankFlows()
	boxOpts = append(boxOpts, mailbox.WithFlows(flows))
	s := &rankState{
		e:       e,
		box:     mailbox.New(r, topo, nil, boxOpts...),
		mux:     termination.NewMux(r),
		flows:   flows,
		active:  make(map[uint32]*runningQuery),
		pending: make(map[uint32][]mailbox.Record),
		dead:    make(map[uint32]struct{}),
	}
	if e.cfg.Pagers != nil {
		s.pager = e.cfg.Pagers[r.Rank()]
	}
	shutdown := false
	idleSpins := 0
	var finished []uint32 // reused scratch
	for {
		progress := false

		// Control events, in global log order.
		for _, ev := range e.log.from(s.cursor) {
			s.cursor++
			progress = true
			switch ev.kind {
			case evStart:
				s.start(r, ev.q)
			case evCancel:
				if rq := s.active[ev.q.id]; rq != nil {
					rq.run.Cancel()
				}
				// Unknown ID: the query already quiesced here — nothing to
				// drain; the cancel verdict is recorded on the query object.
			case evAbort:
				// Forced retirement (process failure elsewhere in the
				// cluster): finish now, without waiting for detector
				// quiescence that can never arrive. The start event precedes
				// the abort in the log, so an absent ID means the query
				// already finished on this rank — only the tombstone is left.
				s.dead[ev.q.id] = struct{}{}
				delete(s.pending, ev.q.id)
				if rq := s.active[ev.q.id]; rq != nil {
					rq.run.Cancel()
					s.retire(r, ev.q.id, true)
				}
			case evShutdown:
				shutdown = true
			}
		}

		// One execution slice per in-flight query. In out-of-core mode Step
		// parks visitors whose adjacency pages are absent (issuing demand
		// fetches) and keeps executing resident ones — latency hiding.
		for _, rq := range s.active {
			if rq.run.Step(e.opts.StepBatch) {
				progress = true
			}
		}

		// Completed page fetches: run the visitors waiting on them, for every
		// active query (the pager dedups fetches across queries parked on the
		// same page). Drained after Step so a page that completed mid-Step is
		// picked up in the same iteration — parked visitors always see their
		// completion in a Drain at or after their park, so no unpark signal
		// is ever lost. The batch's pages are pinned from fetch to Release,
		// so Unpark's visitors execute against resident data; Release then
		// lets the fetch workers (stalled once enough completions pile up
		// unconsumed) refill the window.
		if s.pager != nil {
			if pages := s.pager.Drain(); len(pages) > 0 {
				progress = true
				for _, rq := range s.active {
					rq.run.Unpark(pages)
				}
				s.pager.Release(pages)
			}
		}

		// Shared mailbox poll, demultiplexed by record tag. Polling AFTER the
		// execution slices matters for termination safety: loopback records
		// pushed during Step are counted received the moment the mailbox
		// parks them, so a query must not report local idleness while such a
		// record awaits application — this poll drains them into the heaps
		// (making LocalIdle false), and nothing below creates new local
		// deliveries before the detectors pump.
		for _, rec := range s.box.Poll() {
			progress = true
			if rq := s.active[rec.Tag]; rq != nil {
				rq.run.Deliver(rec)
			} else if _, gone := s.dead[rec.Tag]; gone {
				// Straggler for a force-aborted query (a surviving peer kept
				// sending until its own abort landed): drop it. The flow
				// ledger of an aborted query is void by construction.
				continue
			} else {
				// Start event not replayed yet (quiesced queries cannot
				// receive: their S==R drained before ID retirement). Parking
				// retains the record past this poll epoch, so the payload —
				// an arena sub-slice the mailbox reclaims at its next Poll —
				// must be copied out first (see mailbox.Record).
				rec.Payload = append([]byte(nil), rec.Payload...)
				s.pending[rec.Tag] = append(s.pending[rec.Tag], rec)
			}
		}

		// Out of immediate work: flush partial aggregation buffers so parked
		// records (any query's) cannot stall termination. Safe at any time —
		// parked records hold S > R for their query until delivered, so
		// flushing is pure liveness.
		if !progress {
			s.box.FlushAll()
		}

		// Termination detection, per query.
		finished = finished[:0]
		for id, rq := range s.active {
			rq.syncFlows()
			if rq.run.PumpTermination(rq.run.LocalIdle()) {
				finished = append(finished, id)
			}
		}
		for _, id := range finished {
			progress = true
			s.finish(r, id)
		}

		if shutdown && len(s.active) == 0 {
			return
		}
		if progress {
			idleSpins = 0
			continue
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// start brings a query live on this rank: mint its detector instance, build
// its shared-mode visitor queue, seed the initial visitors, and drain any
// records that arrived ahead of the start event.
func (s *rankState) start(r *rt.Rank, q *query) {
	det := s.mux.Detector(q.id)
	rq := &runningQuery{
		q:    q,
		det:  det,
		cell: s.flows.cell(q.id),
	}
	rq.run = newRunner(r, s.e.cfg.Parts[r.Rank()], s.e.cfg.Ghosts[r.Rank()], s.pager, s.box, det, q, s.e.opts)
	s.active[q.id] = rq
	if recs := s.pending[q.id]; len(recs) > 0 {
		delete(s.pending, q.id)
		for _, rec := range recs {
			rq.run.Deliver(rec)
		}
	}
}

// finish retires a quiesced query on this rank: record the flow account,
// gather results, release the detector's control-plane slice, and — on the
// machine's last rank to get here — complete the query engine-side. No
// end-of-query barrier is needed: record tags make misattribution impossible,
// so ranks retire independently (contrast core.Queue.Run's barrier).
func (s *rankState) finish(r *rt.Rank, id uint32) { s.retire(r, id, false) }

// retire is finish with an optional forced mode for aborts. Forced retirement
// skips none of the result gathering — Finish depends only on rank-local
// monotone state, not on quiescence — but tombstones the detector instance
// (Mux.Retire) instead of releasing it, because surviving ranks may still
// emit waves for the id.
func (s *rankState) retire(r *rt.Rank, id uint32, forced bool) {
	rq := s.active[id]
	delete(s.active, id)
	st := rq.run.Stats()
	rq.q.flow[r.Rank()] = FlowCell{
		Sent:        rq.cell.sent,
		Delivered:   rq.cell.received,
		DetSent:     st.DetectorSent,
		DetReceived: st.DetectorReceived,
	}
	delete(s.flows.cells, id)
	if r.Rank() == 0 {
		rq.q.res.Waves = st.DetectorWaves
	}
	// Finish runs even when cancelled: the algorithm's per-vertex state is
	// monotone (levels/distances/labels only improve), so gathering the
	// partial state over disjoint master ranges yields a consistent coarse
	// checkpoint that a resubmitted query can resume from (Spec.Resume).
	rq.run.Finish()
	if forced {
		s.mux.Retire(id)
	} else {
		s.mux.Release(id)
	}
	delete(s.pending, id)
	if int(rq.q.ranksDone.Add(1)) == s.e.localRanks {
		s.e.completeQuery(rq.q)
	}
}
