package pagecache

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// flakyDevice fails the first failN reads, then behaves like its backing
// memory device.
type flakyDevice struct {
	mem   MemDevice
	failN atomic.Int64
}

var errInjected = errors.New("injected device failure")

func (d *flakyDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.failN.Add(-1) >= 0 {
		return 0, errInjected
	}
	return d.mem.ReadAt(p, off)
}
func (d *flakyDevice) Size() int64  { return d.mem.Size() }
func (d *flakyDevice) Close() error { return nil }

func TestCacheSurfacesDeviceErrors(t *testing.T) {
	dev := &flakyDevice{mem: MemDevice{Data: testData(4096)}}
	dev.failN.Store(1)
	c, err := New(dev, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
}

func TestCacheRecoversAfterDeviceError(t *testing.T) {
	data := testData(4096)
	dev := &flakyDevice{mem: MemDevice{Data: data}}
	dev.failN.Store(2)
	c, err := New(dev, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// First attempts fail; the failed frame must be withdrawn so retries
	// fault the page in cleanly once the device heals.
	for i := 0; i < 2; i++ {
		if _, err := c.ReadAt(buf, 0); err == nil {
			t.Fatal("expected failure while device is down")
		}
	}
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after device recovery failed: %v", err)
	}
	if !bytes.Equal(buf, data[:64]) {
		t.Fatal("recovered read returned wrong data")
	}
	// And it must now be cached.
	s := c.Stats()
	c.ReadAt(buf, 0)
	if c.Stats().Hits != s.Hits+1 {
		t.Fatal("recovered page not cached")
	}
}

// shortReadDevice returns (n>0, err) for the first failN reads — the
// partial-read-with-error case a real device produces on a mid-transfer
// fault — then behaves like its backing memory device.
type shortReadDevice struct {
	mem   MemDevice
	failN atomic.Int64
	short int // bytes "transferred" before the injected fault
}

func (d *shortReadDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.failN.Add(-1) >= 0 {
		n, _ := d.mem.ReadAt(p, off)
		if n > d.short {
			n = d.short
		}
		return n, errInjected
	}
	return d.mem.ReadAt(p, off)
}
func (d *shortReadDevice) Size() int64  { return d.mem.Size() }
func (d *shortReadDevice) Close() error { return nil }

func TestCacheShortReadWithErrorNotCached(t *testing.T) {
	// A device returning (n>0, err) mid-device must propagate the error and
	// must NOT publish the partially-read, zero-filled page as valid cache
	// contents.
	data := testData(4096)
	dev := &shortReadDevice{mem: MemDevice{Data: data}, short: 7}
	dev.failN.Store(1)
	c, err := New(dev, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := c.ReadAt(buf, 0); !errors.Is(err, errInjected) {
		t.Fatalf("partial read error swallowed: got %v", err)
	}
	// The page must not have been cached: the retry re-faults it and returns
	// the true bytes, never a zero-filled tail.
	n, err := c.ReadAt(buf, 0)
	if err != nil || n != 256 {
		t.Fatalf("read after recovery = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[:256]) {
		t.Fatal("partially-read page was published as cache contents")
	}
	if c.Stats().Misses < 2 {
		t.Fatalf("failed partial load was cached: %+v", c.Stats())
	}
}

func TestCacheShortReadWithoutErrorRejected(t *testing.T) {
	// A device that short-reads mid-device with a nil error violates the
	// BlockDevice contract; the cache must reject the page rather than
	// zero-fill the gap.
	data := testData(1024)
	lying := &truncatingDevice{mem: MemDevice{Data: data}, cap: 10}
	c, err := New(lying, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("contract-violating short read accepted: err=%v", err)
	}
}

// truncatingDevice returns at most cap bytes per read with a nil error.
type truncatingDevice struct {
	mem MemDevice
	cap int
}

func (d *truncatingDevice) ReadAt(p []byte, off int64) (int, error) {
	if len(p) > d.cap {
		p = p[:d.cap]
	}
	return d.mem.ReadAt(p, off)
}
func (d *truncatingDevice) Size() int64  { return d.mem.Size() }
func (d *truncatingDevice) Close() error { return nil }

func TestCacheConcurrentReadersSurviveErrors(t *testing.T) {
	data := testData(1 << 14)
	dev := &flakyDevice{mem: MemDevice{Data: data}}
	dev.failN.Store(8)
	c, err := New(dev, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	bad := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 100; i++ {
				off := int64(((g*37 + i*101) * 113) % (len(data) - 128))
				n, err := c.ReadAt(buf, off)
				if err != nil {
					continue // injected failure; retry next round
				}
				if n != 128 || !bytes.Equal(buf, data[off:off+128]) {
					bad <- fmt.Sprintf("corrupt read at %d", off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Fatal(msg)
	}
	// The cache must end in a consistent state: a full sweep succeeds.
	buf := make([]byte, 256)
	for off := int64(0); off < int64(len(data)); off += 256 {
		if _, err := c.ReadAt(buf, off); err != nil {
			t.Fatalf("post-failure sweep failed at %d: %v", off, err)
		}
		if !bytes.Equal(buf, data[off:off+256]) {
			t.Fatalf("post-failure sweep corrupt at %d", off)
		}
	}
}
