package pagecache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// flakyDevice fails the first failN reads, then behaves like its backing
// memory device.
type flakyDevice struct {
	mem   MemDevice
	failN atomic.Int64
}

var errInjected = errors.New("injected device failure")

func (d *flakyDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.failN.Add(-1) >= 0 {
		return 0, errInjected
	}
	return d.mem.ReadAt(p, off)
}
func (d *flakyDevice) Size() int64  { return d.mem.Size() }
func (d *flakyDevice) Close() error { return nil }

func TestCacheSurfacesDeviceErrors(t *testing.T) {
	dev := &flakyDevice{mem: MemDevice{Data: testData(4096)}}
	dev.failN.Store(1)
	c, err := New(dev, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := c.ReadAt(buf, 0); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
}

func TestCacheRecoversAfterDeviceError(t *testing.T) {
	data := testData(4096)
	dev := &flakyDevice{mem: MemDevice{Data: data}}
	dev.failN.Store(2)
	c, err := New(dev, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	// First attempts fail; the failed frame must be withdrawn so retries
	// fault the page in cleanly once the device heals.
	for i := 0; i < 2; i++ {
		if _, err := c.ReadAt(buf, 0); err == nil {
			t.Fatal("expected failure while device is down")
		}
	}
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after device recovery failed: %v", err)
	}
	if !bytes.Equal(buf, data[:64]) {
		t.Fatal("recovered read returned wrong data")
	}
	// And it must now be cached.
	s := c.Stats()
	c.ReadAt(buf, 0)
	if c.Stats().Hits != s.Hits+1 {
		t.Fatal("recovered page not cached")
	}
}

func TestCacheConcurrentReadersSurviveErrors(t *testing.T) {
	data := testData(1 << 14)
	dev := &flakyDevice{mem: MemDevice{Data: data}}
	dev.failN.Store(8)
	c, err := New(dev, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	bad := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 100; i++ {
				off := int64(((g*37 + i*101) * 113) % (len(data) - 128))
				n, err := c.ReadAt(buf, off)
				if err != nil {
					continue // injected failure; retry next round
				}
				if n != 128 || !bytes.Equal(buf, data[off:off+128]) {
					bad <- fmt.Sprintf("corrupt read at %d", off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Fatal(msg)
	}
	// The cache must end in a consistent state: a full sweep succeeds.
	buf := make([]byte, 256)
	for off := int64(0); off < int64(len(data)); off += 256 {
		if _, err := c.ReadAt(buf, off); err != nil {
			t.Fatalf("post-failure sweep failed at %d: %v", off, err)
		}
		if !bytes.Equal(buf, data[off:off+256]) {
			t.Fatalf("post-failure sweep corrupt at %d", off)
		}
	}
}
