package pagecache

import (
	"fmt"
	"io"
	"sync"
)

// Stats counts cache activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	BytesRead uint64 // bytes served to callers
}

// HitRate returns hits / (hits + misses), or 1 if there were no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// frame is one cached page slot.
type frame struct {
	page       int64 // page index, -1 when free
	data       []byte
	referenced bool          // CLOCK reference bit
	loading    chan struct{} // non-nil while the page is being read in
	inflight   int           // readers currently copying from data
}

// Cache is a user-space page cache over a BlockDevice. It supports
// concurrent reads: hits copy under a short critical section, misses release
// the lock during device I/O so many misses proceed in parallel (bounded
// only by the device's queue depth), and concurrent requests for the same
// missing page coalesce onto one device read.
//
// Eviction is CLOCK (second chance), a practical approximation of LRU with
// O(1) state per frame.
type Cache struct {
	dev      BlockDevice
	pageSize int

	mu     sync.Mutex
	frames []*frame
	table  map[int64]*frame
	hand   int
	stats  Stats
}

// New returns a cache of numFrames pages of pageSize bytes over dev.
func New(dev BlockDevice, pageSize, numFrames int) (*Cache, error) {
	if pageSize <= 0 || numFrames <= 0 {
		return nil, fmt.Errorf("pagecache: pageSize and numFrames must be positive")
	}
	c := &Cache{
		dev:      dev,
		pageSize: pageSize,
		frames:   make([]*frame, numFrames),
		table:    make(map[int64]*frame, numFrames),
	}
	for i := range c.frames {
		c.frames[i] = &frame{page: -1, data: make([]byte, pageSize)}
	}
	return c, nil
}

// PageSize returns the page size in bytes.
func (c *Cache) PageSize() int { return c.pageSize }

// NumFrames returns the cache capacity in pages.
func (c *Cache) NumFrames() int { return len(c.frames) }

// ReadAt fills p from offset off through the cache, returning the number of
// bytes read. Reads crossing page boundaries are split internally.
//
// ReadAt honors the io.ReaderAt contract: when it returns n < len(p) because
// the read was clamped at end-of-device, the error is io.EOF (a full read
// ending exactly at the device boundary returns nil).
func (c *Cache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pagecache: negative offset")
	}
	total := 0
	for len(p) > 0 {
		if off >= c.dev.Size() {
			break
		}
		page := off / int64(c.pageSize)
		inPage := int(off % int64(c.pageSize))
		n := min(len(p), c.pageSize-inPage)
		// Clamp to device size.
		if rem := c.dev.Size() - off; int64(n) > rem {
			n = int(rem)
		}
		if err := c.readFromPage(p[:n], page, inPage); err != nil {
			return total, err
		}
		p = p[n:]
		off += int64(n)
		total += n
	}
	c.mu.Lock()
	c.stats.BytesRead += uint64(total)
	c.mu.Unlock()
	if len(p) > 0 {
		// The loop stopped with bytes still wanted: the read was clamped at
		// end-of-device. io.ReaderAt requires a non-nil error here.
		return total, io.EOF
	}
	return total, nil
}

// readFromPage copies n bytes from the given page at offset inPage,
// faulting the page in if needed.
func (c *Cache) readFromPage(dst []byte, page int64, inPage int) error {
	for {
		c.mu.Lock()
		if f, ok := c.table[page]; ok {
			if f.loading != nil {
				// Another reader is faulting this page in; wait off-lock.
				ch := f.loading
				c.mu.Unlock()
				<-ch
				continue
			}
			f.referenced = true
			f.inflight++
			c.stats.Hits++
			c.mu.Unlock()
			copy(dst, f.data[inPage:])
			c.mu.Lock()
			f.inflight--
			c.mu.Unlock()
			return nil
		}
		// Miss: claim a victim frame, publish it as loading, and read the
		// device outside the lock.
		c.stats.Misses++
		f := c.evictLocked()
		if f == nil {
			// All frames are loading or busy; rare under sane sizing. Wait
			// for any in-progress load and retry.
			ch := c.anyLoadingLocked()
			c.mu.Unlock()
			if ch != nil {
				<-ch
			}
			continue
		}
		if f.page >= 0 {
			delete(c.table, f.page)
			c.stats.Evictions++
		}
		f.page = page
		f.loading = make(chan struct{})
		f.referenced = true
		c.table[page] = f
		c.mu.Unlock()

		// The page is only allowed to fall short of pageSize where the device
		// itself ends; anything shorter mid-device is a failed load. A device
		// returning (n>0, err) must NOT have its partial data published as
		// valid cache contents.
		pageOff := page * int64(c.pageSize)
		want := c.pageSize
		if rem := c.dev.Size() - pageOff; rem < int64(want) {
			want = int(rem)
		}
		n, err := c.dev.ReadAt(f.data[:want], pageOff)
		if err == io.EOF && n == want {
			err = nil // a full read ending at the device boundary may carry EOF
		}
		if err == nil && n < want {
			err = io.ErrUnexpectedEOF // short read without an error: device broke its contract
		}
		c.mu.Lock()
		if err != nil {
			// Failed or partial load: withdraw the frame so later readers
			// retry, and propagate the device error to this caller.
			delete(c.table, page)
			f.page = -1
			close(f.loading)
			f.loading = nil
			c.mu.Unlock()
			return err
		}
		for i := want; i < len(f.data); i++ {
			f.data[i] = 0 // zero-fill only past end-of-device
		}
		close(f.loading)
		f.loading = nil
		f.inflight++
		c.mu.Unlock()
		copy(dst, f.data[inPage:])
		c.mu.Lock()
		f.inflight--
		c.mu.Unlock()
		return nil
	}
}

// evictLocked runs the CLOCK hand to find a reclaimable frame. Returns nil
// if every frame is pinned by a load or an in-flight copy.
func (c *Cache) evictLocked() *frame {
	for sweep := 0; sweep < 2*len(c.frames); sweep++ {
		f := c.frames[c.hand]
		c.hand = (c.hand + 1) % len(c.frames)
		if f.loading != nil || f.inflight > 0 {
			continue
		}
		if f.page >= 0 && f.referenced {
			f.referenced = false
			continue
		}
		return f
	}
	return nil
}

// anyLoadingLocked returns one in-progress load channel, if any.
func (c *Cache) anyLoadingLocked() chan struct{} {
	for _, f := range c.frames {
		if f.loading != nil {
			return f.loading
		}
	}
	return nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters (cache contents are kept).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// Close closes the underlying device.
func (c *Cache) Close() error { return c.dev.Close() }
