package pagecache

import (
	"fmt"
	"io"
	"sync"
)

// Stats counts cache activity.
//
// Misses counts device fault-ins exactly: one per load the cache issues
// against the device (coalesced waiters on an in-flight load count nothing,
// and a reader stalled waiting for a free frame counts a Stall per wait, not
// a Miss per retry). Hits counts page accesses served from a resident frame.
// Every page access therefore lands in exactly one of Hits or Misses.
type Stats struct {
	Hits      uint64
	Misses    uint64 // device fault-ins (loads issued), exactly
	Stalls    uint64 // waits for a frame with every frame pinned or loading
	Evictions uint64
	BytesRead uint64 // bytes served to callers
}

// HitRate returns hits / (hits + misses), or 1 if there were no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Hits) / float64(total)
}

// frame is one cached page slot.
type frame struct {
	page       int64 // page index, -1 when free
	data       []byte
	referenced bool          // CLOCK reference bit
	loading    chan struct{} // non-nil while the page is being read in
	inflight   int           // readers currently copying from data
}

// Cache is a user-space page cache over a BlockDevice. It supports
// concurrent reads: hits copy under a short critical section, misses release
// the lock during device I/O so many misses proceed in parallel (bounded
// only by the device's queue depth), and concurrent requests for the same
// missing page coalesce onto one device read.
//
// Eviction is CLOCK (second chance), a practical approximation of LRU with
// O(1) state per frame.
type Cache struct {
	dev      BlockDevice
	pageSize int

	mu     sync.Mutex
	frames []*frame
	table  map[int64]*frame
	hand   int
	stats  Stats
	// frameFreed is signalled when a pinned frame may have become
	// reclaimable: an in-flight copy finished, or a load completed or was
	// withdrawn. Readers that find every frame pinned with no load in
	// progress block here instead of spinning on the lock.
	frameFreed   sync.Cond
	stallWaiters int
}

// New returns a cache of numFrames pages of pageSize bytes over dev.
func New(dev BlockDevice, pageSize, numFrames int) (*Cache, error) {
	if pageSize <= 0 || numFrames <= 0 {
		return nil, fmt.Errorf("pagecache: pageSize and numFrames must be positive")
	}
	c := &Cache{
		dev:      dev,
		pageSize: pageSize,
		frames:   make([]*frame, numFrames),
		table:    make(map[int64]*frame, numFrames),
	}
	for i := range c.frames {
		c.frames[i] = &frame{page: -1, data: make([]byte, pageSize)}
	}
	c.frameFreed.L = &c.mu
	return c, nil
}

// PageSize returns the page size in bytes.
func (c *Cache) PageSize() int { return c.pageSize }

// NumFrames returns the cache capacity in pages.
func (c *Cache) NumFrames() int { return len(c.frames) }

// ReadAt fills p from offset off through the cache, returning the number of
// bytes read. Reads crossing page boundaries are split internally.
//
// ReadAt honors the io.ReaderAt contract: when it returns n < len(p) because
// the read was clamped at end-of-device, the error is io.EOF (a full read
// ending exactly at the device boundary returns nil).
func (c *Cache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("pagecache: negative offset")
	}
	total := 0
	for len(p) > 0 {
		if off >= c.dev.Size() {
			break
		}
		page := off / int64(c.pageSize)
		inPage := int(off % int64(c.pageSize))
		n := min(len(p), c.pageSize-inPage)
		// Clamp to device size.
		if rem := c.dev.Size() - off; int64(n) > rem {
			n = int(rem)
		}
		if err := c.readFromPage(p[:n], page, inPage, false); err != nil {
			return total, err
		}
		p = p[n:]
		off += int64(n)
		total += n
	}
	c.mu.Lock()
	c.stats.BytesRead += uint64(total)
	c.mu.Unlock()
	if len(p) > 0 {
		// The loop stopped with bytes still wanted: the read was clamped at
		// end-of-device. io.ReaderAt requires a non-nil error here.
		return total, io.EOF
	}
	return total, nil
}

// readFromPage copies n bytes from the given page at offset inPage,
// faulting the page in if needed. With pin set, the frame's reader pin is
// retained on success instead of released — the caller owns it and must drop
// it through Unpin once the page's consumers have run.
func (c *Cache) readFromPage(dst []byte, page int64, inPage int, pin bool) error {
	for {
		c.mu.Lock()
		if f, ok := c.table[page]; ok {
			if f.loading != nil {
				// Another reader is faulting this page in; wait off-lock.
				ch := f.loading
				c.mu.Unlock()
				<-ch
				continue
			}
			f.referenced = true
			f.inflight++
			c.stats.Hits++
			c.mu.Unlock()
			copy(dst, f.data[inPage:])
			if !pin {
				c.unpin(f)
			}
			return nil
		}
		// Miss path: claim a victim frame, publish it as loading, and read
		// the device outside the lock.
		f := c.evictLocked()
		if f == nil {
			// No reclaimable frame. Distinguish the two causes: frames held
			// by in-progress loads (wait on one load channel) vs. frames all
			// pinned by in-flight copies with nothing loading (block on the
			// condition until a pin drops — a tight relock-and-retry loop
			// here would spin a core against the very readers it waits for).
			// Either way this is a stall, not a miss: no device fault-in
			// happens on this pass.
			c.stats.Stalls++
			if ch := c.anyLoadingLocked(); ch != nil {
				c.mu.Unlock()
				<-ch
				continue
			}
			c.stallWaiters++
			c.frameFreed.Wait()
			c.stallWaiters--
			c.mu.Unlock()
			continue
		}
		// One miss per device fault-in, counted exactly where the load is
		// claimed (a reader retrying around the stall path above must not
		// count the same logical fault more than once).
		c.stats.Misses++
		if f.page >= 0 {
			delete(c.table, f.page)
			c.stats.Evictions++
		}
		f.page = page
		f.loading = make(chan struct{})
		f.referenced = true
		c.table[page] = f
		c.mu.Unlock()

		// The page is only allowed to fall short of pageSize where the device
		// itself ends; anything shorter mid-device is a failed load. A device
		// returning (n>0, err) must NOT have its partial data published as
		// valid cache contents.
		pageOff := page * int64(c.pageSize)
		want := c.pageSize
		if rem := c.dev.Size() - pageOff; rem < int64(want) {
			want = int(rem)
		}
		n, err := c.dev.ReadAt(f.data[:want], pageOff)
		if err == io.EOF && n == want {
			err = nil // a full read ending at the device boundary may carry EOF
		}
		if err == nil && n < want {
			err = io.ErrUnexpectedEOF // short read without an error: device broke its contract
		}
		c.mu.Lock()
		if err != nil {
			// Failed or partial load: withdraw the frame so later readers
			// retry, and propagate the device error to this caller.
			delete(c.table, page)
			f.page = -1
			close(f.loading)
			f.loading = nil
			c.wakeStalledLocked()
			c.mu.Unlock()
			return err
		}
		for i := want; i < len(f.data); i++ {
			f.data[i] = 0 // zero-fill only past end-of-device
		}
		close(f.loading)
		f.loading = nil
		f.inflight++
		c.wakeStalledLocked()
		c.mu.Unlock()
		copy(dst, f.data[inPage:])
		if !pin {
			c.unpin(f)
		}
		return nil
	}
}

// unpin releases a reader's pin on a frame and wakes any reader blocked
// waiting for a reclaimable frame.
func (c *Cache) unpin(f *frame) {
	c.mu.Lock()
	f.inflight--
	c.wakeStalledLocked()
	c.mu.Unlock()
}

// wakeStalledLocked wakes readers blocked in the all-frames-pinned path.
func (c *Cache) wakeStalledLocked() {
	if c.stallWaiters > 0 {
		c.frameFreed.Broadcast()
	}
}

// evictLocked runs the CLOCK hand to find a reclaimable frame. Returns nil
// if every frame is pinned by a load or an in-flight copy.
func (c *Cache) evictLocked() *frame {
	for sweep := 0; sweep < 2*len(c.frames); sweep++ {
		f := c.frames[c.hand]
		c.hand = (c.hand + 1) % len(c.frames)
		if f.loading != nil || f.inflight > 0 {
			continue
		}
		if f.page >= 0 && f.referenced {
			f.referenced = false
			continue
		}
		return f
	}
	return nil
}

// anyLoadingLocked returns one in-progress load channel, if any.
func (c *Cache) anyLoadingLocked() chan struct{} {
	for _, f := range c.frames {
		if f.loading != nil {
			return f.loading
		}
	}
	return nil
}

// Resident reports whether the page containing off is present in the cache
// with its load complete — i.e. whether a ReadAt touching off would be served
// without a synchronous device fault. Offsets past end-of-device are
// trivially resident (reads there never touch the device). The answer is
// advisory: the page can be evicted the moment the lock is released.
func (c *Cache) Resident(off int64) bool {
	if off < 0 {
		return false
	}
	if off >= c.dev.Size() {
		return true
	}
	page := off / int64(c.pageSize)
	c.mu.Lock()
	f, ok := c.table[page]
	resident := ok && f.loading == nil
	c.mu.Unlock()
	return resident
}

// Touch faults in the page containing off without copying any data out,
// blocking until the page is resident (or the load fails). It is the fetch
// primitive for asynchronous prefetchers: a worker goroutine calls Touch so
// that a later ReadAt on the serving path hits. Touching past end-of-device
// is a no-op.
func (c *Cache) Touch(off int64) error {
	if off < 0 {
		return fmt.Errorf("pagecache: negative offset")
	}
	if off >= c.dev.Size() {
		return nil
	}
	return c.readFromPage(nil, off/int64(c.pageSize), 0, false)
}

// TouchPin faults in the page containing off like Touch, but returns with a
// reader pin held on the frame: the page cannot be evicted until a matching
// Unpin. It is the fetch primitive for flow-controlled prefetchers — pinning
// from fault-in until the page's consumers have run guarantees a fetched
// page is consumed at least once before eviction, which a plain Touch cannot
// (under memory pressure the page can be evicted before the consumer runs,
// degenerating into fetch/evict livelock). No pin is taken when the load
// fails or off is past end-of-device (both are safe to Unpin anyway).
//
// Pins count against the frame pool: callers must bound their outstanding
// pins well below NumFrames or concurrent readers stall waiting for frames.
func (c *Cache) TouchPin(off int64) error {
	if off < 0 {
		return fmt.Errorf("pagecache: negative offset")
	}
	if off >= c.dev.Size() {
		return nil
	}
	return c.readFromPage(nil, off/int64(c.pageSize), 0, true)
}

// Unpin drops a pin taken by TouchPin on the page containing off. Unpinning
// an offset whose page is absent (the load failed, or off is past
// end-of-device) is a no-op.
func (c *Cache) Unpin(off int64) {
	if off < 0 || off >= c.dev.Size() {
		return
	}
	page := off / int64(c.pageSize)
	c.mu.Lock()
	if f, ok := c.table[page]; ok && f.inflight > 0 {
		f.inflight--
		c.wakeStalledLocked()
	}
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters (cache contents are kept).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// Close closes the underlying device.
func (c *Cache) Close() error { return c.dev.Close() }
