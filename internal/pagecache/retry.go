package pagecache

// RetryDevice: the recovery half of the device fault model. NAND reads fail
// transiently in practice (and deterministically under internal/faults'
// FaultyDevice); the page cache treats any failed load as fatal for that
// read, so the retry policy lives below it — a failed or torn read is
// re-attempted against the underlying device before the cache ever sees it.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// transientError is implemented by errors that are worth retrying: the same
// read re-issued may succeed (injected read faults, NAND soft errors).
// faults.ReadError implements it.
type transientError interface{ Transient() bool }

// IsTransient reports whether err (or anything it wraps) marks itself as a
// transient, retryable device failure.
func IsTransient(err error) bool {
	var t transientError
	return errors.As(err, &t) && t.Transient()
}

// DefaultReadAttempts bounds RetryDevice's attempts per read. Injected
// transient faults are independent per attempt, so surviving probability
// decays geometrically; persistent failures still surface after the cap
// (the fault model is fail-stop for non-transient device errors).
const DefaultReadAttempts = 16

// ErrExhausted marks a read whose whole retry budget was consumed without a
// clean result. Match with errors.Is(err, ErrExhausted).
var ErrExhausted = errors.New("pagecache: device read retry budget exhausted")

// ExhaustedError is the typed error RetryDevice returns when the attempt
// budget runs out. It deliberately reports Transient() == false even when the
// last underlying failure was transient: the retry layer IS the transient
// handler, so a failure that survives it is permanent as far as every layer
// above is concerned — the cache must fail the load, not silently accept a
// torn read, and recovery escalates to the query-level ladder.
type ExhaustedError struct {
	Off      int64 // read offset
	Attempts int   // attempt budget that was consumed
	Short    bool  // true when the last attempt was a torn (short, error-free) read
	Last     error // last underlying error, nil for a torn read
}

func (e *ExhaustedError) Error() string {
	if e.Last == nil {
		return fmt.Sprintf("pagecache: device read retry budget exhausted (off=%d attempts=%d, torn read)",
			e.Off, e.Attempts)
	}
	return fmt.Sprintf("pagecache: device read retry budget exhausted (off=%d attempts=%d): %v",
		e.Off, e.Attempts, e.Last)
}

// Unwrap exposes the last underlying failure for errors.As inspection.
// errors.As(err, &transientError) still finds the ExhaustedError first
// (outermost wins), so IsTransient correctly reports false.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// Is makes errors.Is(err, ErrExhausted) match.
func (e *ExhaustedError) Is(target error) bool { return target == ErrExhausted }

// Transient reports false: an exhausted retry budget is permanent by
// definition (see type doc).
func (e *ExhaustedError) Transient() bool { return false }

// RetryDevice wraps a BlockDevice, re-issuing reads that fail with a
// transient error or return a torn (short, mid-device) result. Non-transient
// errors propagate immediately.
type RetryDevice struct {
	under    BlockDevice
	attempts int
	backoff  time.Duration // sleep between attempts, doubling (0 = none)

	retries   atomic.Uint64
	exhausted atomic.Uint64

	// Optional mirror sinks (SetCounters): obs counters without an obs import.
	retrySink   CounterSink
	exhaustSink CounterSink
}

var _ BlockDevice = (*RetryDevice)(nil)

// NewRetryDevice wraps under with up to attempts tries per read
// (<= 0 selects DefaultReadAttempts) and an optional doubling backoff
// between tries (0 = immediate; simulated devices already charge their
// service latency per attempt).
func NewRetryDevice(under BlockDevice, attempts int, backoff time.Duration) *RetryDevice {
	if attempts <= 0 {
		attempts = DefaultReadAttempts
	}
	return &RetryDevice{under: under, attempts: attempts, backoff: backoff}
}

// ReadAt retries transient failures and torn reads, returning the first
// clean result. When the attempt budget runs out it returns a typed
// *ExhaustedError — never a bare short (n < len(p), nil) result mid-device,
// which callers that don't re-check n would silently accept as valid data.
// The exhaustion error reports Transient() == false (this layer is the
// transient handler; what survives it is permanent) while still wrapping the
// last underlying failure for inspection.
func (d *RetryDevice) ReadAt(p []byte, off int64) (int, error) {
	delay := d.backoff
	var n int
	var err error
	for a := 0; a < d.attempts; a++ {
		if a > 0 {
			d.retries.Add(1)
			if d.retrySink != nil {
				d.retrySink.Add(1)
			}
			if delay > 0 {
				time.Sleep(delay)
				delay *= 2
			}
		}
		n, err = d.under.ReadAt(p, off)
		if err != nil {
			if IsTransient(err) {
				continue
			}
			return n, err // permanent: fail-stop, no retry
		}
		if n < len(p) && off+int64(n) < d.under.Size() {
			continue // torn read: short mid-device, retry
		}
		return n, nil
	}
	d.exhausted.Add(1)
	if d.exhaustSink != nil {
		d.exhaustSink.Add(1)
	}
	return n, &ExhaustedError{Off: off, Attempts: d.attempts, Short: err == nil, Last: err}
}

// Size returns the underlying device capacity.
func (d *RetryDevice) Size() int64 { return d.under.Size() }

// Close closes the underlying device.
func (d *RetryDevice) Close() error { return d.under.Close() }

// CounterSink receives monotonic counter increments. internal/obs counters
// satisfy it structurally, keeping this package free of an obs dependency.
type CounterSink interface{ Add(n uint64) }

// SetCounters mirrors retry/exhaustion events into external counters (e.g.
// obs.Registry counters named obs.PCRetries / obs.PCExhausted). Either sink
// may be nil. Must be called before the device serves concurrent reads.
func (d *RetryDevice) SetCounters(retries, exhausted CounterSink) {
	d.retrySink = retries
	d.exhaustSink = exhausted
}

// Retries returns the number of re-issued read attempts.
func (d *RetryDevice) Retries() uint64 { return d.retries.Load() }

// Exhausted returns the number of reads that consumed the whole attempt
// budget without a clean result.
func (d *RetryDevice) Exhausted() uint64 { return d.exhausted.Load() }
