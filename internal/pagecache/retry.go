package pagecache

// RetryDevice: the recovery half of the device fault model. NAND reads fail
// transiently in practice (and deterministically under internal/faults'
// FaultyDevice); the page cache treats any failed load as fatal for that
// read, so the retry policy lives below it — a failed or torn read is
// re-attempted against the underlying device before the cache ever sees it.

import (
	"errors"
	"sync/atomic"
	"time"
)

// transientError is implemented by errors that are worth retrying: the same
// read re-issued may succeed (injected read faults, NAND soft errors).
// faults.ReadError implements it.
type transientError interface{ Transient() bool }

// IsTransient reports whether err (or anything it wraps) marks itself as a
// transient, retryable device failure.
func IsTransient(err error) bool {
	var t transientError
	return errors.As(err, &t) && t.Transient()
}

// DefaultReadAttempts bounds RetryDevice's attempts per read. Injected
// transient faults are independent per attempt, so surviving probability
// decays geometrically; persistent failures still surface after the cap
// (the fault model is fail-stop for non-transient device errors).
const DefaultReadAttempts = 16

// RetryDevice wraps a BlockDevice, re-issuing reads that fail with a
// transient error or return a torn (short, mid-device) result. Non-transient
// errors propagate immediately.
type RetryDevice struct {
	under    BlockDevice
	attempts int
	backoff  time.Duration // sleep between attempts, doubling (0 = none)

	retries   atomic.Uint64
	exhausted atomic.Uint64
}

var _ BlockDevice = (*RetryDevice)(nil)

// NewRetryDevice wraps under with up to attempts tries per read
// (<= 0 selects DefaultReadAttempts) and an optional doubling backoff
// between tries (0 = immediate; simulated devices already charge their
// service latency per attempt).
func NewRetryDevice(under BlockDevice, attempts int, backoff time.Duration) *RetryDevice {
	if attempts <= 0 {
		attempts = DefaultReadAttempts
	}
	return &RetryDevice{under: under, attempts: attempts, backoff: backoff}
}

// ReadAt retries transient failures and torn reads, returning the first
// clean result. After the attempt budget it returns the last outcome as-is
// (the cache above converts a still-short read into io.ErrUnexpectedEOF).
func (d *RetryDevice) ReadAt(p []byte, off int64) (int, error) {
	delay := d.backoff
	var n int
	var err error
	for a := 0; a < d.attempts; a++ {
		if a > 0 {
			d.retries.Add(1)
			if delay > 0 {
				time.Sleep(delay)
				delay *= 2
			}
		}
		n, err = d.under.ReadAt(p, off)
		if err != nil {
			if IsTransient(err) {
				continue
			}
			return n, err // permanent: fail-stop, no retry
		}
		if n < len(p) && off+int64(n) < d.under.Size() {
			continue // torn read: short mid-device, retry
		}
		return n, nil
	}
	d.exhausted.Add(1)
	return n, err
}

// Size returns the underlying device capacity.
func (d *RetryDevice) Size() int64 { return d.under.Size() }

// Close closes the underlying device.
func (d *RetryDevice) Close() error { return d.under.Close() }

// Retries returns the number of re-issued read attempts.
func (d *RetryDevice) Retries() uint64 { return d.retries.Load() }

// Exhausted returns the number of reads that consumed the whole attempt
// budget without a clean result.
func (d *RetryDevice) Exhausted() uint64 { return d.exhausted.Load() }
