package pagecache

import (
	"errors"
	"io"
	"testing"
)

// retryFlakyDev fails the first failN reads with a transient error and tears
// (halves) the next tornN reads, then behaves perfectly.
type retryFlakyDev struct {
	MemDevice
	failN, tornN int
}

type retryTempErr struct{}

func (retryTempErr) Error() string   { return "transient device hiccup" }
func (retryTempErr) Transient() bool { return true }

func (d *retryFlakyDev) ReadAt(p []byte, off int64) (int, error) {
	if d.failN > 0 {
		d.failN--
		return 0, retryTempErr{}
	}
	n, err := d.MemDevice.ReadAt(p, off)
	if err == nil && d.tornN > 0 && off+int64(n) < d.Size() && n > 1 {
		d.tornN--
		n /= 2
	}
	return n, err
}

func TestRetryDeviceAbsorbsTransientFaults(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	dev := &retryFlakyDev{MemDevice: MemDevice{Data: data}, failN: 3, tornN: 2}
	rd := NewRetryDevice(dev, 8, 0)
	p := make([]byte, 512)
	n, err := rd.ReadAt(p, 0)
	if err != nil || n != 512 {
		t.Fatalf("ReadAt = (%d, %v), want clean 512", n, err)
	}
	for i := range p {
		if p[i] != byte(i) {
			t.Fatalf("byte %d corrupted after retries", i)
		}
	}
	if rd.Retries() == 0 {
		t.Error("no retries recorded despite injected faults")
	}
	if rd.Exhausted() != 0 {
		t.Error("retry budget reported exhausted on a recoverable device")
	}
}

func TestRetryDevicePermanentErrorFailsFast(t *testing.T) {
	dev := &MemDevice{Data: make([]byte, 64)}
	rd := NewRetryDevice(dev, 8, 0)
	// Out-of-range read returns a permanent (non-transient) error.
	if _, err := rd.ReadAt(make([]byte, 8), 4096); err == nil {
		t.Fatal("expected permanent error")
	}
	if rd.Retries() != 0 {
		t.Errorf("permanent error retried %d times, want 0", rd.Retries())
	}
}

func TestRetryDeviceExhaustion(t *testing.T) {
	dev := &retryFlakyDev{MemDevice: MemDevice{Data: make([]byte, 64)}, failN: 1 << 30}
	rd := NewRetryDevice(dev, 4, 0)
	_, err := rd.ReadAt(make([]byte, 8), 0)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("exhausted retries should return ErrExhausted, got %v", err)
	}
	// The retry layer is the transient handler: what survives it is permanent,
	// so an exhausted read must NOT advertise itself as retryable even though
	// the last underlying failure was transient.
	if IsTransient(err) {
		t.Fatalf("exhausted retry budget reported transient: %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *ExhaustedError, got %T", err)
	}
	if ex.Attempts != 4 || ex.Off != 0 || ex.Short {
		t.Errorf("ExhaustedError = %+v, want Attempts=4 Off=0 Short=false", ex)
	}
	// The last underlying failure stays reachable for inspection.
	var inner retryTempErr
	if !errors.As(ex.Last, &inner) {
		t.Errorf("last underlying error %v not reachable", ex.Last)
	}
	if rd.Exhausted() != 1 {
		t.Errorf("Exhausted = %d, want 1", rd.Exhausted())
	}
}

// TestRetryDeviceExhaustionTornRead covers the bug this sequence of tests
// exists for: a device that tears every read used to make RetryDevice return
// (n < len(p), nil) after the budget — a silent short read mid-device that
// upper layers could mistake for success. It must now be a typed error.
func TestRetryDeviceExhaustionTornRead(t *testing.T) {
	data := make([]byte, 4096)
	dev := &retryFlakyDev{MemDevice: MemDevice{Data: data}, tornN: 1 << 30}
	rd := NewRetryDevice(dev, 4, 0)
	n, err := rd.ReadAt(make([]byte, 512), 0)
	if err == nil {
		t.Fatalf("torn-read exhaustion returned (n=%d, nil): silent short read", n)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if IsTransient(err) {
		t.Fatalf("exhausted torn read reported transient: %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("want *ExhaustedError, got %T", err)
	}
	if !ex.Short || ex.Last != nil {
		t.Errorf("ExhaustedError = %+v, want Short=true Last=nil", ex)
	}
}

func TestCacheOverRetryDeviceSurvivesFaults(t *testing.T) {
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i % 251)
	}
	dev := &retryFlakyDev{MemDevice: MemDevice{Data: data}, failN: 5, tornN: 3}
	c, err := New(NewRetryDevice(dev, 16, 0), 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := c.ReadAt(got, 0); err != nil && !(errors.Is(err, io.EOF) && n == len(data)) {
		t.Fatalf("cached read failed: %v after %d bytes", err, n)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d (faults leaked through retry layer)", i, got[i], data[i])
		}
	}
}
