package pagecache

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestQuickCacheEquivalentToDevice: for any page size, frame count, and read
// pattern, reading through the cache returns exactly what the device holds.
func TestQuickCacheEquivalentToDevice(t *testing.T) {
	data := testData(1 << 14)
	f := func(pageSel, frameSel uint8, offs []uint16) bool {
		pageSize := 32 << (pageSel % 5) // 32..512
		frames := int(frameSel)%7 + 1
		c, err := New(&MemDevice{Data: data}, pageSize, frames)
		if err != nil {
			return false
		}
		buf := make([]byte, 200)
		for _, o := range offs {
			off := int64(o) % int64(len(data))
			n, err := c.ReadAt(buf, off)
			if err != nil {
				return false
			}
			want := data[off:]
			if len(want) > n {
				want = want[:n]
			}
			if !bytes.Equal(buf[:n], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
