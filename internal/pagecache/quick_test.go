package pagecache

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// TestQuickCacheEquivalentToDevice: for any page size, frame count, and read
// pattern, reading through the cache returns exactly what the device holds,
// under the io.ReaderAt contract: a full read returns nil, a read clamped at
// end-of-device returns the available bytes with io.EOF.
func TestQuickCacheEquivalentToDevice(t *testing.T) {
	data := testData(1 << 14)
	f := func(pageSel, frameSel uint8, offs []uint16) bool {
		pageSize := 32 << (pageSel % 5) // 32..512
		frames := int(frameSel)%7 + 1
		c, err := New(&MemDevice{Data: data}, pageSize, frames)
		if err != nil {
			return false
		}
		buf := make([]byte, 200)
		for _, o := range offs {
			off := int64(o) % int64(len(data))
			n, err := c.ReadAt(buf, off)
			wantN := len(buf)
			wantErr := error(nil)
			if rem := int(int64(len(data)) - off); rem < wantN {
				wantN, wantErr = rem, io.EOF
			}
			if n != wantN || err != wantErr {
				return false
			}
			if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
