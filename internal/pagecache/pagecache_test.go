package pagecache

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testData(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i * 31)
	}
	return d
}

func TestMemDeviceReads(t *testing.T) {
	d := &MemDevice{Data: testData(100)}
	buf := make([]byte, 10)
	n, err := d.ReadAt(buf, 5)
	if err != nil || n != 10 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, testData(100)[5:15]) {
		t.Fatal("wrong bytes")
	}
	if n, _ := d.ReadAt(buf, 95); n != 5 {
		t.Fatalf("tail read returned %d bytes", n)
	}
	if _, err := d.ReadAt(buf, 200); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestCacheReadThrough(t *testing.T) {
	data := testData(1 << 14)
	c, err := New(&MemDevice{Data: data}, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	for _, off := range []int64{0, 100, 255, 256, 1000, int64(len(data)) - 100} {
		n, err := c.ReadAt(buf, off)
		if err != nil || n != 100 {
			t.Fatalf("ReadAt(%d) = %d, %v", off, n, err)
		}
		if !bytes.Equal(buf, data[off:off+100]) {
			t.Fatalf("wrong bytes at offset %d", off)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c, _ := New(&MemDevice{Data: testData(4096)}, 256, 16)
	buf := make([]byte, 256)
	c.ReadAt(buf, 0) // miss
	c.ReadAt(buf, 0) // hit
	c.ReadAt(buf, 0) // hit
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() < 0.6 || s.HitRate() > 0.7 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestCacheEviction(t *testing.T) {
	// 4 frames, touch 8 pages: evictions must occur and data stay correct.
	data := testData(8 * 64)
	c, _ := New(&MemDevice{Data: data}, 64, 4)
	buf := make([]byte, 64)
	for round := 0; round < 3; round++ {
		for page := 0; page < 8; page++ {
			off := int64(page * 64)
			c.ReadAt(buf, off)
			if !bytes.Equal(buf, data[off:off+64]) {
				t.Fatalf("round %d page %d corrupted", round, page)
			}
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions despite working set > capacity")
	}
}

func TestCacheCrossPageRead(t *testing.T) {
	data := testData(1024)
	c, _ := New(&MemDevice{Data: data}, 64, 8)
	buf := make([]byte, 300)
	n, err := c.ReadAt(buf, 50)
	if err != nil || n != 300 {
		t.Fatalf("cross-page read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data[50:350]) {
		t.Fatal("cross-page read corrupted")
	}
}

func TestCacheTailClamp(t *testing.T) {
	data := testData(100) // less than one page
	c, _ := New(&MemDevice{Data: data}, 64, 4)
	buf := make([]byte, 64)
	// io.ReaderAt contract: a read clamped at end-of-device returns the
	// partial count with io.EOF, not nil.
	n, err := c.ReadAt(buf, 64)
	if n != 36 || err != io.EOF {
		t.Fatalf("tail read = %d, %v; want 36, io.EOF", n, err)
	}
	if !bytes.Equal(buf[:36], data[64:]) {
		t.Fatal("tail bytes wrong")
	}
	if n, err := c.ReadAt(buf, 1000); n != 0 || err != io.EOF {
		t.Fatalf("read past EOF = %d, %v; want 0, io.EOF", n, err)
	}
}

func TestCacheReadAtContract(t *testing.T) {
	// Table over the io.ReaderAt cases: full reads return nil, clamped reads
	// return io.EOF with the bytes available, empty reads return (0, nil).
	data := testData(200)
	c, _ := New(&MemDevice{Data: data}, 64, 4)
	cases := []struct {
		off     int64
		len     int
		wantN   int
		wantErr error
	}{
		{0, 200, 200, nil},     // exact full-device read
		{100, 100, 100, nil},   // read ending exactly at device end
		{150, 100, 50, io.EOF}, // clamped mid-request
		{199, 1, 1, nil},       // last byte
		{200, 1, 0, io.EOF},    // at device end
		{4096, 16, 0, io.EOF},  // far past device end
		{10, 0, 0, nil},        // empty read
	}
	for _, tc := range cases {
		buf := make([]byte, tc.len)
		n, err := c.ReadAt(buf, tc.off)
		if n != tc.wantN || err != tc.wantErr {
			t.Errorf("ReadAt(len=%d, off=%d) = (%d, %v), want (%d, %v)",
				tc.len, tc.off, n, err, tc.wantN, tc.wantErr)
		}
		if n > 0 && !bytes.Equal(buf[:n], data[tc.off:tc.off+int64(n)]) {
			t.Errorf("ReadAt(len=%d, off=%d) returned wrong bytes", tc.len, tc.off)
		}
	}
	if _, err := c.ReadAt(make([]byte, 8), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestCacheConcurrentReaders(t *testing.T) {
	data := testData(1 << 16)
	dev := NewSimDevice(&MemDevice{Data: data}, 50*time.Microsecond, 32)
	c, _ := New(dev, 512, 32)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 200; i++ {
				off := int64(((g*131 + i*257) * 97) % (len(data) - 256))
				n, err := c.ReadAt(buf, off)
				if err != nil || n != 256 {
					errs <- "read failed"
					return
				}
				if !bytes.Equal(buf, data[off:off+256]) {
					errs <- "corrupt concurrent read"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	// Many goroutines hitting the same cold page: device must see far fewer
	// reads than callers.
	data := testData(4096)
	dev := NewSimDevice(&MemDevice{Data: data}, time.Millisecond, 8)
	c, _ := New(dev, 4096, 2)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			c.ReadAt(buf, 0)
		}()
	}
	wg.Wait()
	if n := dev.Reads(); n > 2 {
		t.Fatalf("32 concurrent readers of one page caused %d device reads", n)
	}
}

func TestSimDeviceLatency(t *testing.T) {
	dev := NewSimDevice(&MemDevice{Data: testData(1024)}, 2*time.Millisecond, 1)
	buf := make([]byte, 8)
	start := time.Now()
	dev.ReadAt(buf, 0)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("read returned in %v, before simulated latency", elapsed)
	}
	if dev.Reads() != 1 || dev.ReadBytes() != 8 {
		t.Fatalf("device counters: %d reads, %d bytes", dev.Reads(), dev.ReadBytes())
	}
}

func TestSimDeviceQueueDepthBoundsConcurrency(t *testing.T) {
	// With queue depth 4 and 8 concurrent 5ms reads, total time must be at
	// least two service rounds.
	dev := NewSimDevice(&MemDevice{Data: testData(64)}, 5*time.Millisecond, 4)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			dev.ReadAt(buf, 0)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("8 reads at depth 4 finished in %v (< 2 service rounds)", elapsed)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	data := testData(5000)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dev, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if dev.Size() != 5000 {
		t.Fatalf("size = %d", dev.Size())
	}
	c, _ := New(dev, 512, 4)
	buf := make([]byte, 100)
	if _, err := c.ReadAt(buf, 1234); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[1234:1334]) {
		t.Fatal("file-backed read wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&MemDevice{}, 0, 4); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(&MemDevice{}, 64, 0); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestResetStats(t *testing.T) {
	c, _ := New(&MemDevice{Data: testData(256)}, 64, 2)
	buf := make([]byte, 8)
	c.ReadAt(buf, 0)
	c.ResetStats()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
	// Cached content survives reset: next read is a hit.
	c.ReadAt(buf, 0)
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("cache lost content on reset: %+v", s)
	}
}
