// Package pagecache implements the user-space page cache of §II-B: a
// POSIX-style read interface over a block device, designed to sustain a high
// level of concurrent I/O for both hits and misses (the property the paper
// identifies as essential to extracting performance from NAND Flash).
//
// Devices are abstracted behind BlockDevice. SimDevice models a NAND-Flash
// part: a fixed per-read service latency and a bounded number of in-flight
// operations (queue depth). Asynchronous graph traversals hide this latency
// by keeping many visitor-driven reads outstanding — the central claim of
// the paper's external-memory experiments (Figures 8, 9, Table II).
package pagecache

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// BlockDevice is random-access readable storage.
type BlockDevice interface {
	// ReadAt fills p from offset off. Short reads at end-of-device return
	// the bytes available.
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the device capacity in bytes.
	Size() int64
	Close() error
}

// MemDevice is an in-memory device (stands in for DRAM-resident data, and
// backs SimDevice so NVRAM simulations do not depend on the host's disks).
type MemDevice struct{ Data []byte }

func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(d.Data)) {
		return 0, fmt.Errorf("pagecache: read at %d beyond device size %d", off, len(d.Data))
	}
	n := copy(p, d.Data[off:])
	return n, nil
}
func (d *MemDevice) Size() int64 { return int64(len(d.Data)) }
func (d *MemDevice) Close() error {
	d.Data = nil
	return nil
}

// FileDevice reads a real file (direct-I/O-style usage: the cache above it
// is the only cache, no readahead assumptions).
type FileDevice struct {
	f    *os.File
	size int64
}

// OpenFile opens path as a device.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }
func (d *FileDevice) Size() int64                             { return d.size }
func (d *FileDevice) Close() error                            { return d.f.Close() }

// SimDevice wraps a device with NAND-Flash-like service behaviour: every
// read costs Latency, and at most QueueDepth reads are serviced
// concurrently. With a deep queue the device delivers high throughput only
// to callers that keep it busy — sequential, synchronous readers observe the
// full per-read latency.
type SimDevice struct {
	Underlying BlockDevice
	Latency    time.Duration
	sem        chan struct{}
	reads      atomic.Uint64
	readBytes  atomic.Uint64
}

// NewSimDevice returns a simulated NVRAM device. queueDepth must be >= 1.
func NewSimDevice(underlying BlockDevice, latency time.Duration, queueDepth int) *SimDevice {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &SimDevice{
		Underlying: underlying,
		Latency:    latency,
		sem:        make(chan struct{}, queueDepth),
	}
}

func (d *SimDevice) ReadAt(p []byte, off int64) (int, error) {
	d.sem <- struct{}{}
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	n, err := d.Underlying.ReadAt(p, off)
	<-d.sem
	d.reads.Add(1)
	d.readBytes.Add(uint64(n))
	return n, err
}

func (d *SimDevice) Size() int64  { return d.Underlying.Size() }
func (d *SimDevice) Close() error { return d.Underlying.Close() }

// Reads returns the number of device read operations serviced.
func (d *SimDevice) Reads() uint64 { return d.reads.Load() }

// ReadBytes returns the number of bytes read from the device.
func (d *SimDevice) ReadBytes() uint64 { return d.readBytes.Load() }
