package pagecache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingDevice counts ReadAt calls against the wrapped device — the ground
// truth the Misses counter must match exactly.
type countingDevice struct {
	BlockDevice
	calls atomic.Uint64
}

func (d *countingDevice) ReadAt(p []byte, off int64) (int, error) {
	d.calls.Add(1)
	return d.BlockDevice.ReadAt(p, off)
}

// TestMissesEqualDeviceFaultIns is the accounting contract test: under many
// racing readers, Misses equals the number of device reads exactly (no
// double-counting in the stall/retry path), and every page access lands in
// exactly one of Hits or Misses.
func TestMissesEqualDeviceFaultIns(t *testing.T) {
	const (
		pageSize = 64
		pages    = 32
		frames   = 4
		readers  = 8
		reads    = 400
	)
	dev := &countingDevice{BlockDevice: &MemDevice{Data: testData(pageSize * pages)}}
	c, err := New(dev, pageSize, frames)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < reads; i++ {
				// Single-page reads, a different skewed walk per reader.
				page := int64((i*(r+3) + r) % pages)
				if _, err := c.ReadAt(buf, page*pageSize); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if got, want := st.Misses, dev.calls.Load(); got != want {
		t.Fatalf("Misses = %d, device fault-ins = %d; must be exactly equal", got, want)
	}
	if total, want := st.Hits+st.Misses, uint64(readers*reads); total != want {
		t.Fatalf("Hits(%d)+Misses(%d) = %d, page accesses = %d; every access must count exactly once",
			st.Hits, st.Misses, total, want)
	}
	if st.Misses < pages {
		t.Fatalf("Misses = %d < %d pages: every page was touched at least once", st.Misses, pages)
	}
}

// TestCoalescedMissCountsOnce holds a device read open while several readers
// pile onto the same missing page: exactly one miss (and one device read) may
// be counted; the coalesced waiters are hits.
func TestCoalescedMissCountsOnce(t *testing.T) {
	const pageSize = 64
	release := make(chan struct{})
	var entered sync.Once
	started := make(chan struct{})
	slow := &gateDevice{
		BlockDevice: &MemDevice{Data: testData(pageSize * 4)},
		gate: func() {
			entered.Do(func() { close(started) })
			<-release
		},
	}
	dev := &countingDevice{BlockDevice: slow}
	c, err := New(dev, pageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 6
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			if _, err := c.ReadAt(buf, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	<-started
	time.Sleep(10 * time.Millisecond) // let the rest coalesce onto the load
	close(release)
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 || dev.calls.Load() != 1 {
		t.Fatalf("Misses = %d, device reads = %d; want exactly 1 each", st.Misses, dev.calls.Load())
	}
	if st.Hits != waiters-1 {
		t.Fatalf("Hits = %d, want %d (coalesced waiters)", st.Hits, waiters-1)
	}
}

// gateDevice calls gate before every read — a hook to hold loads open.
type gateDevice struct {
	BlockDevice
	gate func()
}

func (d *gateDevice) ReadAt(p []byte, off int64) (int, error) {
	d.gate()
	return d.BlockDevice.ReadAt(p, off)
}

// TestAllFramesPinnedBlocksWithoutSpinning pins every frame with no load in
// progress — the regression case where readFromPage used to relock-and-retry
// in a tight loop. The reader must park on the condition variable (Stalls
// stays put while it waits) and complete promptly once a pin drops.
func TestAllFramesPinnedBlocksWithoutSpinning(t *testing.T) {
	const pageSize = 64
	c, err := New(&MemDevice{Data: testData(pageSize * 8)}, pageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	// Fault in pages 0 and 1, then pin both frames as an in-flight copy would.
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(buf, pageSize); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	for _, f := range c.frames {
		f.inflight++
	}
	c.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		b := make([]byte, 8)
		_, err := c.ReadAt(b, 2*pageSize)
		done <- err
	}()

	// Wait for the reader to reach the stall path...
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Stalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reader never reached the stall path")
		}
		time.Sleep(time.Millisecond)
	}
	// ...then verify it is parked, not spinning: a spinning retry loop would
	// keep incrementing Stalls while every frame stays pinned.
	before := c.Stats().Stalls
	time.Sleep(50 * time.Millisecond)
	if after := c.Stats().Stalls; after != before {
		t.Fatalf("Stalls grew from %d to %d while all frames stayed pinned: reader is spinning", before, after)
	}
	select {
	case err := <-done:
		t.Fatalf("read completed while all frames were pinned (err=%v)", err)
	default:
	}

	// Drop one pin; the blocked reader must be woken and complete.
	c.unpin(c.frames[0])
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after a frame was unpinned")
	}
	if st := c.Stats(); st.Stalls < 1 {
		t.Fatalf("Stalls = %d, want >= 1", st.Stalls)
	}
}

// TestEvictionSkipsPinnedFrames holds a pin on one resident page while the
// rest of the cache churns: the CLOCK hand must never reclaim the pinned
// frame, no matter how much pressure the other frame takes.
func TestEvictionSkipsPinnedFrames(t *testing.T) {
	const pageSize = 64
	c, err := New(&MemDevice{Data: testData(pageSize * 16)}, pageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	pinned := c.table[0]
	pinned.inflight++
	c.mu.Unlock()

	for page := int64(1); page < 16; page++ {
		if _, err := c.ReadAt(buf, page*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Resident(0) {
		t.Fatal("pinned page 0 was evicted")
	}
	c.mu.Lock()
	if pinned.page != 0 {
		t.Fatalf("pinned frame now holds page %d, want 0", pinned.page)
	}
	c.mu.Unlock()
	c.unpin(pinned)
	if st := c.Stats(); st.Evictions != 14 {
		// 15 faults beyond page 0 through the single unpinned frame: the
		// first fills the free frame, the rest each evict its predecessor.
		t.Fatalf("Evictions = %d, want 14", st.Evictions)
	}
}

// TestClockSecondChance verifies the fairness property that distinguishes
// CLOCK from naive FIFO: a page re-referenced since the hand last passed it
// survives the next eviction; an untouched one is taken.
func TestClockSecondChance(t *testing.T) {
	const pageSize = 64
	c, err := New(&MemDevice{Data: testData(pageSize * 8)}, pageSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for page := int64(0); page < 4; page++ { // fill: all referenced
		if _, err := c.ReadAt(buf, page*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	// Fault page 4: the hand strips every reference bit, wraps, and takes
	// frame 0 (page 0). Pages 1..3 are now resident and unreferenced.
	if _, err := c.ReadAt(buf, 4*pageSize); err != nil {
		t.Fatal(err)
	}
	// Re-reference page 1, then fault page 5: the hand clears page 1's bit
	// (second chance) and evicts page 2 instead.
	if _, err := c.ReadAt(buf, 1*pageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(buf, 5*pageSize); err != nil {
		t.Fatal(err)
	}
	if !c.Resident(1 * pageSize) {
		t.Fatal("re-referenced page 1 was evicted: no second chance")
	}
	if c.Resident(2 * pageSize) {
		t.Fatal("unreferenced page 2 survived: eviction took the wrong victim")
	}
}

// TestResidentAndTouch covers the prefetch primitives: Touch faults a page in
// (counting one miss), a second Touch is a hit, and Resident tracks exactly
// the loaded-and-complete state.
func TestResidentAndTouch(t *testing.T) {
	const pageSize = 64
	c, err := New(&MemDevice{Data: testData(pageSize * 4)}, pageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Resident(0) {
		t.Fatal("page 0 resident before any access")
	}
	if c.Resident(-1) {
		t.Fatal("negative offset reported resident")
	}
	if !c.Resident(4 * pageSize) {
		t.Fatal("offset past end-of-device must be trivially resident")
	}
	if err := c.Touch(0); err != nil {
		t.Fatal(err)
	}
	if !c.Resident(0) {
		t.Fatal("page 0 not resident after Touch")
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first Touch: Misses=%d Hits=%d, want 1/0", st.Misses, st.Hits)
	}
	if err := c.Touch(pageSize / 2); err != nil { // same page, different offset
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("after second Touch: Misses=%d Hits=%d, want 1/1", st.Misses, st.Hits)
	}
	if err := c.Touch(100 * pageSize); err != nil { // past EOF: no-op
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits+st.Misses != 2 {
		t.Fatalf("Touch past end-of-device counted an access: Hits=%d Misses=%d", st.Hits, st.Misses)
	}
	if err := c.Touch(-5); err == nil {
		t.Fatal("Touch(-5) succeeded, want error")
	}
}

// TestTouchPinProtectsFromEviction covers the flow-control primitive: a
// TouchPinned page survives arbitrary churn until Unpin, then becomes a
// normal eviction candidate. Unpin on absent or past-EOF pages is a no-op.
func TestTouchPinProtectsFromEviction(t *testing.T) {
	const pageSize = 64
	c, err := New(&MemDevice{Data: testData(pageSize * 16)}, pageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TouchPin(0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after TouchPin: Misses=%d Hits=%d, want 1/0", st.Misses, st.Hits)
	}
	// Churn every other page through the second frame: page 0 must survive.
	buf := make([]byte, 8)
	for pg := int64(1); pg < 16; pg++ {
		if _, err := c.ReadAt(buf, pg*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Resident(0) {
		t.Fatal("pinned page evicted under churn")
	}
	c.Unpin(0)
	// Unpinned, the page is reclaimable again: two faults force it out.
	for pg := int64(1); pg <= 2; pg++ {
		if _, err := c.ReadAt(buf, pg*pageSize); err != nil {
			t.Fatal(err)
		}
	}
	if c.Resident(0) {
		t.Fatal("unpinned page survived eviction pressure on a 2-frame cache")
	}
	c.Unpin(3 * pageSize)                              // absent page: no-op
	c.Unpin(100 * pageSize)                            // past EOF: no-op
	c.Unpin(-1)                                        // negative: no-op
	if err := c.TouchPin(100 * pageSize); err != nil { // past EOF: no-op, no pin
		t.Fatal(err)
	}
	if err := c.TouchPin(-1); err == nil {
		t.Fatal("TouchPin(-1) succeeded, want error")
	}
}
