package pagecache

import (
	"bytes"
	"io"
	"testing"
)

// FuzzCacheReadAt drives Cache.ReadAt with arbitrary device contents, page
// geometry, offsets and lengths, and checks the io.ReaderAt contract against
// the device bytes directly: full reads return nil, reads clamped at
// end-of-device return (avail, io.EOF), reads at-or-past the end return
// (0, io.EOF), and the returned bytes always match the device.
func FuzzCacheReadAt(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), uint8(4), uint8(2), int64(3), uint16(8))
	f.Add([]byte{}, uint8(0), uint8(0), int64(0), uint16(1))        // empty device
	f.Add([]byte("x"), uint8(255), uint8(7), int64(0), uint16(512)) // 1-byte device, big read
	f.Add([]byte("page-boundary--page-boundary"), uint8(13), uint8(1), int64(13), uint16(14))
	f.Add([]byte("tail"), uint8(2), uint8(3), int64(-5), uint16(4)) // negative offset
	f.Fuzz(func(t *testing.T, data []byte, pageSel, frameSel uint8, off int64, lenSel uint16) {
		pageSize := int(pageSel)%128 + 1
		frames := int(frameSel)%8 + 1
		c, err := New(&MemDevice{Data: data}, pageSize, frames)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		buf := make([]byte, int(lenSel)%512)
		n, err := c.ReadAt(buf, off)
		if off < 0 {
			if err == nil || n != 0 {
				t.Fatalf("negative offset: ReadAt = (%d, %v), want (0, error)", n, err)
			}
			return
		}
		size := int64(len(data))
		switch {
		case len(buf) == 0:
			if n != 0 || err != nil {
				t.Fatalf("empty read = (%d, %v), want (0, nil)", n, err)
			}
		case off >= size:
			if n != 0 || err != io.EOF {
				t.Fatalf("read past end = (%d, %v), want (0, io.EOF)", n, err)
			}
		default:
			want := len(buf)
			wantErr := error(nil)
			if rem := size - off; int64(want) > rem {
				want = int(rem)
				wantErr = io.EOF
			}
			if n != want || err != wantErr {
				t.Fatalf("ReadAt(len=%d, off=%d) over %d bytes = (%d, %v), want (%d, %v)",
					len(buf), off, size, n, err, want, wantErr)
			}
			if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
				t.Fatalf("ReadAt(len=%d, off=%d) returned wrong bytes", len(buf), off)
			}
		}
		// A second read of the same range must hit the cache and agree.
		n2, err2 := c.ReadAt(buf, off)
		if n2 != n || err2 != err {
			t.Fatalf("re-read disagrees: (%d, %v) then (%d, %v)", n, err, n2, err2)
		}
	})
}
