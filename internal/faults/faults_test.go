package faults

import (
	"bytes"
	"math"
	"testing"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/pagecache"
	"havoqgt/internal/rt"
)

func TestFateDeterministic(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Msgs: []MsgRule{{
			From: Wildcard, To: Wildcard, Kind: Wildcard,
			Drop: 0.1, Duplicate: 0.1, Corrupt: 0.1, Delay: 0.1, Reorder: 0.1,
		}},
	}
	a := New(plan, obs.NewRegistry())
	b := New(plan, obs.NewRegistry())
	diffSeed := New(Plan{Seed: 43, Msgs: plan.Msgs}, obs.NewRegistry())
	var diverged bool
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			for kind := uint8(0); kind < 3; kind++ {
				for seq := uint64(0); seq < 200; seq++ {
					fa := a.Fate(from, to, kind, seq, 64)
					fb := b.Fate(from, to, kind, seq, 64)
					if fa != fb {
						t.Fatalf("same plan, different fate at (%d,%d,%d,%d): %+v vs %+v",
							from, to, kind, seq, fa, fb)
					}
					if fa != diffSeed.Fate(from, to, kind, seq, 64) {
						diverged = true
					}
				}
			}
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFateRatesAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Plan{
		Seed: 7,
		Msgs: []MsgRule{{From: Wildcard, To: Wildcard, Kind: Wildcard, Drop: 0.1, Duplicate: 0.05}},
	}, reg)
	const n = 20000
	var drops, dups int
	for seq := uint64(0); seq < n; seq++ {
		f := in.Fate(0, 1, rt.KindMailbox, seq, 32)
		if f.Drop {
			drops++
		}
		if f.Duplicate {
			dups++
		}
	}
	if rate := float64(drops) / n; math.Abs(rate-0.1) > 0.02 {
		t.Errorf("drop rate %.3f, want ~0.1", rate)
	}
	if rate := float64(dups) / n; math.Abs(rate-0.05) > 0.02 {
		t.Errorf("duplicate rate %.3f, want ~0.05", rate)
	}
	if got := reg.Counter(obs.FaultInjected("drop")).Value(); got != uint64(drops) {
		t.Errorf("drop counter %d, observed %d", got, drops)
	}
	if got := reg.Counter(obs.FaultInjected("duplicate")).Value(); got != uint64(dups) {
		t.Errorf("duplicate counter %d, observed %d", got, dups)
	}
}

func TestDropDominates(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Msgs: []MsgRule{{From: Wildcard, To: Wildcard, Kind: Wildcard, Drop: 1, Duplicate: 1, Corrupt: 1, Delay: 1}},
	}, obs.NewRegistry())
	f := in.Fate(0, 1, rt.KindMailbox, 0, 16)
	if !f.Drop || f.Duplicate || f.Corrupt || f.Delay != 0 {
		t.Fatalf("drop should dominate, got %+v", f)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Msgs: []MsgRule{
			{From: 0, To: 1, Kind: int(rt.KindMailbox), Drop: 1},
			{From: Wildcard, To: Wildcard, Kind: Wildcard}, // no faults
		},
	}, obs.NewRegistry())
	if f := in.Fate(0, 1, rt.KindMailbox, 0, 16); !f.Drop {
		t.Error("rule (0,1,mailbox) should drop")
	}
	if f := in.Fate(1, 0, rt.KindMailbox, 0, 16); f.Drop {
		t.Error("reverse direction should fall through to the no-fault rule")
	}
	if f := in.Fate(0, 1, rt.KindControl, 0, 16); f.Drop {
		t.Error("control kind should fall through to the no-fault rule")
	}
}

func TestCorruptRequiresPayload(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Msgs: []MsgRule{{From: Wildcard, To: Wildcard, Kind: Wildcard, Corrupt: 1}},
	}, obs.NewRegistry())
	if f := in.Fate(0, 1, rt.KindMailbox, 0, 0); f.Corrupt {
		t.Error("zero-length payload must not be marked corrupt")
	}
	if f := in.Fate(0, 1, rt.KindMailbox, 0, 8); !f.Corrupt {
		t.Error("corrupt=1 with payload should corrupt")
	}
}

func TestStallWindow(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Plan{
		Seed:   1,
		Stalls: []StallRule{{Rank: 1, After: 0, Duration: 100 * time.Millisecond}},
	}, reg)
	in.Arm()
	if in.Stall(1) <= 0 {
		t.Fatal("rank 1 should be stalled inside the window")
	}
	if in.Stall(0) != 0 {
		t.Fatal("rank 0 should not be stalled")
	}
	deadline := time.Now().Add(2 * time.Second)
	for in.Stall(1) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall window never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter(obs.FaultInjected("stall")).Value(); got != 1 {
		t.Errorf("stall counted %d times, want 1 (once per window)", got)
	}
}

func TestStallPeriodic(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Plan{
		Seed:   1,
		Stalls: []StallRule{{Rank: Wildcard, After: 0, Duration: 5 * time.Millisecond, Period: 25 * time.Millisecond}},
	}, reg)
	in.Arm()
	start := time.Now()
	for time.Since(start) < 60*time.Millisecond {
		in.Stall(0)
		time.Sleep(time.Millisecond)
	}
	c := reg.Counter(obs.FaultInjected("stall")).Value()
	if c < 2 {
		t.Errorf("periodic stall counted %d windows, want >= 2", c)
	}
}

func TestFaultyDeviceReadError(t *testing.T) {
	reg := obs.NewRegistry()
	under := &pagecache.MemDevice{Data: make([]byte, 8192)}
	dev := NewFaultyDevice(under, Plan{Seed: 3, Device: DeviceRule{ReadError: 1}}, reg)
	_, err := dev.ReadAt(make([]byte, 512), 0)
	if err == nil {
		t.Fatal("expected injected read error")
	}
	var re *ReadError
	if !errorsAs(err, &re) {
		t.Fatalf("error %v is not *ReadError", err)
	}
	if !re.Transient() {
		t.Error("injected read errors must be transient")
	}
	if got := reg.Counter(obs.FaultInjected("device_read_error")).Value(); got != 1 {
		t.Errorf("device_read_error counter = %d, want 1", got)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **ReadError) bool {
	re, ok := err.(*ReadError)
	if ok {
		*target = re
	}
	return ok
}

func TestFaultyDeviceTornRead(t *testing.T) {
	reg := obs.NewRegistry()
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	dev := NewFaultyDevice(&pagecache.MemDevice{Data: data}, Plan{Seed: 3, Device: DeviceRule{TornRead: 1}}, reg)

	// Mid-device read: torn to a prefix.
	n, err := dev.ReadAt(make([]byte, 1024), 0)
	if err != nil {
		t.Fatalf("torn read should not error: %v", err)
	}
	if n != 512 {
		t.Errorf("mid-device torn read returned %d bytes, want 512", n)
	}
	// Final-page read: never torn (legal short read would mask corruption).
	n, err = dev.ReadAt(make([]byte, 1024), 8192-1024)
	if err != nil || n != 1024 {
		t.Errorf("final-page read got (%d, %v), want (1024, nil)", n, err)
	}
	if got := reg.Counter(obs.FaultInjected("device_torn_read")).Value(); got != 1 {
		t.Errorf("device_torn_read counter = %d, want 1", got)
	}
}

func TestTornWriter(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	w := NewTornWriter(&buf, 65, reg)
	for _, chunk := range []int{30, 30, 30, 10} {
		n, err := w.Write(make([]byte, chunk))
		if err != nil || n != chunk {
			t.Fatalf("Write(%d) = (%d, %v), want full success", chunk, n, err)
		}
	}
	if buf.Len() != 65 {
		t.Errorf("underlying got %d bytes, want 65", buf.Len())
	}
	if !w.Torn() {
		t.Error("writer should report torn")
	}
	if got := reg.Counter(obs.FaultInjected("device_torn_write")).Value(); got != 1 {
		t.Errorf("device_torn_write counter = %d, want 1", got)
	}
}
