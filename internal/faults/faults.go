// Package faults is the deterministic fault-injection plane: a seedable
// schedule DSL (Plan) and an Injector that realizes it at the three choke
// points of the simulated machine — the rt transport (message drop /
// duplicate / delay / reorder / corrupt and rank stall windows, via
// rt.Transport), the page-cache block device (read errors and torn reads,
// via FaultyDevice), and the external-memory writer path (torn writes, via
// TornWriter).
//
// Every decision is a pure function of (Plan.Seed, message identity), where
// a message's identity is its (from, to, kind, per-pair sequence) tuple that
// the rt transport maintains for exactly this purpose. Two runs with the
// same plan therefore inject byte-identical fault schedules regardless of
// goroutine interleaving, which is what makes chaos failures replayable.
//
// Every fault the injector actually fires is counted in the machine's
// obs.Registry under obs.FaultInjected(kind), so experiments report fault
// rates alongside the communication profile they perturbed.
package faults

import (
	"sync/atomic"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/rt"
	"havoqgt/internal/xrand"
)

// Wildcard matches any rank (MsgRule.From/To, StallRule.Rank) or any message
// kind (MsgRule.Kind).
const Wildcard = -1

// MsgRule gives fault probabilities for messages matching a (from, to, kind)
// pattern. The first rule of a plan that matches a message decides all of
// that message's fault probabilities (later rules are not consulted).
type MsgRule struct {
	From int // source rank, or Wildcard
	To   int // destination rank, or Wildcard
	Kind int // rt message kind (rt.KindMailbox, ...), or Wildcard

	// Independent per-message probabilities in [0, 1]. Drop dominates: a
	// dropped message is not also duplicated/delayed/corrupted.
	Drop      float64
	Duplicate float64
	// Corrupt flips one pseudorandomly chosen payload bit.
	Corrupt float64
	// Delay postpones delivery by a duration drawn uniformly from
	// [DelayMin, DelayMax] (defaults 200µs–2ms when both are zero).
	Delay              float64
	DelayMin, DelayMax time.Duration
	// Reorder is a short delay (uniform in [50µs, 500µs]) whose purpose is
	// overtaking: unequal delays within one sender→receiver pair break the
	// FIFO non-overtaking guarantee. Counted separately from Delay so
	// experiments can distinguish latency faults from ordering faults.
	Reorder float64
}

func (r *MsgRule) matches(from, to int, kind uint8) bool {
	return (r.From == Wildcard || r.From == from) &&
		(r.To == Wildcard || r.To == to) &&
		(r.Kind == Wildcard || r.Kind == int(kind))
}

// StallRule freezes a rank's inbound delivery for a window of wall-clock
// time, modeling a straggler or temporarily unresponsive process. The window
// is [After, After+Duration) relative to the injector's arm time (Arm, or
// lazily the first transport consultation). Period > 0 repeats the window
// every Period (a periodic slowdown); Period == 0 is a one-shot stall.
type StallRule struct {
	Rank     int // stalled rank, or Wildcard for every rank
	After    time.Duration
	Duration time.Duration
	Period   time.Duration
}

// DeviceRule gives per-read fault probabilities for a FaultyDevice.
type DeviceRule struct {
	// ReadError fails the read outright with a typed transient error
	// (*ReadError) before touching the underlying device.
	ReadError float64
	// TornRead returns only a prefix of the data mid-device — a short read
	// that is not at end-of-device, which the page cache above detects as
	// an unexpected EOF rather than silently caching a torn page. The last
	// page of the device is never torn (a short read there is
	// indistinguishable from the legal end-of-device short read).
	TornRead float64
}

// Plan is one complete, seedable fault schedule.
type Plan struct {
	// Seed makes the schedule deterministic: same plan, same faults.
	Seed   uint64
	Msgs   []MsgRule
	Stalls []StallRule
	Device DeviceRule
}

// Distinct salts decorrelate the per-fault-type decision streams.
const (
	saltDrop      = 0xd509_0c6e_93f4_a901
	saltDuplicate = 0x8b1a_7f3c_25d6_e603
	saltCorrupt   = 0x41c6_9ea3_f8b7_2705
	saltCorruptAt = 0x9e6c_2b41_d03a_5807
	saltDelay     = 0x6a09_e667_f3bc_c909
	saltDelaySpan = 0xbb67_ae85_84ca_a70b
	saltReorder   = 0x3c6e_f372_fe94_f82d
	saltReordSpan = 0xa54f_f53a_5f1d_36f1
	saltDevErr    = 0x510e_527f_ade6_82d1
	saltDevTorn   = 0x1f83_d9ab_fb41_bd6b
)

// Default delay windows (see MsgRule.Delay / MsgRule.Reorder).
const (
	defaultDelayMin = 200 * time.Microsecond
	defaultDelayMax = 2 * time.Millisecond
	defaultReordMin = 50 * time.Microsecond
	defaultReordMax = 500 * time.Microsecond
)

// Injector realizes a Plan. It implements rt.Transport (install with
// rt.Machine.SetTransport); device-side faults are realized by wrapping
// block devices with NewFaultyDevice against the same plan.
type Injector struct {
	plan Plan

	// t0 anchors stall windows: UnixNano at Arm (or first consultation).
	t0 atomic.Int64

	// stallWin[i] is the index of the last counted window of Stalls[i]
	// (so each window occurrence is counted once, not once per drain).
	stallWin []atomic.Int64

	cDrop, cDup, cDelay, cReorder, cCorrupt, cStall *obs.Counter
}

var _ rt.Transport = (*Injector)(nil)

// New returns an injector for plan, counting every injected fault in reg
// under obs.FaultInjected(kind).
func New(plan Plan, reg *obs.Registry) *Injector {
	in := &Injector{
		plan:     plan,
		stallWin: make([]atomic.Int64, len(plan.Stalls)),
		cDrop:    reg.Counter(obs.FaultInjected("drop")),
		cDup:     reg.Counter(obs.FaultInjected("duplicate")),
		cDelay:   reg.Counter(obs.FaultInjected("delay")),
		cReorder: reg.Counter(obs.FaultInjected("reorder")),
		cCorrupt: reg.Counter(obs.FaultInjected("corrupt")),
		cStall:   reg.Counter(obs.FaultInjected("stall")),
	}
	for i := range in.stallWin {
		in.stallWin[i].Store(-1)
	}
	return in
}

// Arm anchors the plan's stall windows at the current instant. Call it
// immediately before the phase under test; if never called, the injector
// arms itself at its first consultation.
func (in *Injector) Arm() { in.t0.Store(time.Now().UnixNano()) }

func (in *Injector) armed() int64 {
	if t := in.t0.Load(); t != 0 {
		return t
	}
	now := time.Now().UnixNano()
	if in.t0.CompareAndSwap(0, now) {
		return now
	}
	return in.t0.Load()
}

// roll returns a uniform [0,1) value derived purely from the plan seed, a
// per-fault-type salt, and the message identity.
func (in *Injector) roll(salt uint64, from, to int, kind uint8, seq uint64) float64 {
	h := hash(in.plan.Seed, salt, from, to, kind, seq)
	return float64(h>>11) / (1 << 53)
}

func hash(seed, salt uint64, from, to int, kind uint8, seq uint64) uint64 {
	h := xrand.Mix64(seed ^ salt)
	h = xrand.Mix64(h ^ uint64(from)<<33 ^ uint64(to)<<3 ^ uint64(kind))
	return xrand.Mix64(h ^ seq)
}

// span draws a duration uniformly from [min, max] for the message identity.
func (in *Injector) span(salt uint64, from, to int, kind uint8, seq uint64, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	h := hash(in.plan.Seed, salt, from, to, kind, seq)
	return min + time.Duration(h%uint64(max-min+1))
}

// Fate implements rt.Transport. It is consulted once per Send with the
// message's per-(from,to,kind) sequence number; the verdict depends only on
// the plan and that identity.
func (in *Injector) Fate(from, to int, kind uint8, seq uint64, payloadLen int) rt.Fate {
	in.armed()
	var rule *MsgRule
	for i := range in.plan.Msgs {
		if in.plan.Msgs[i].matches(from, to, kind) {
			rule = &in.plan.Msgs[i]
			break
		}
	}
	if rule == nil {
		return rt.Fate{}
	}
	var f rt.Fate
	if rule.Drop > 0 && in.roll(saltDrop, from, to, kind, seq) < rule.Drop {
		in.cDrop.Inc()
		f.Drop = true
		return f // drop dominates; nothing else observable
	}
	if rule.Duplicate > 0 && in.roll(saltDuplicate, from, to, kind, seq) < rule.Duplicate {
		in.cDup.Inc()
		f.Duplicate = true
	}
	if rule.Corrupt > 0 && payloadLen > 0 && in.roll(saltCorrupt, from, to, kind, seq) < rule.Corrupt {
		in.cCorrupt.Inc()
		f.Corrupt = true
		f.CorruptBit = hash(in.plan.Seed, saltCorruptAt, from, to, kind, seq)
	}
	if rule.Delay > 0 && in.roll(saltDelay, from, to, kind, seq) < rule.Delay {
		in.cDelay.Inc()
		min, max := rule.DelayMin, rule.DelayMax
		if min == 0 && max == 0 {
			min, max = defaultDelayMin, defaultDelayMax
		}
		f.Delay += in.span(saltDelaySpan, from, to, kind, seq, min, max)
	}
	if rule.Reorder > 0 && in.roll(saltReorder, from, to, kind, seq) < rule.Reorder {
		in.cReorder.Inc()
		f.Delay += in.span(saltReordSpan, from, to, kind, seq, defaultReordMin, defaultReordMax)
	}
	return f
}

// Stall implements rt.Transport: it reports how much longer rank's inbound
// delivery stays frozen under the plan's stall windows (0 = not stalled).
func (in *Injector) Stall(rank int) time.Duration {
	if len(in.plan.Stalls) == 0 {
		return 0
	}
	now := time.Duration(time.Now().UnixNano() - in.armed())
	var remain time.Duration
	for i := range in.plan.Stalls {
		s := &in.plan.Stalls[i]
		if s.Duration <= 0 || (s.Rank != Wildcard && s.Rank != rank) {
			continue
		}
		t := now - s.After
		if t < 0 {
			continue
		}
		win := int64(0)
		if s.Period > 0 {
			win = int64(t / s.Period)
			t %= s.Period
		} else if t >= s.Duration {
			continue
		}
		if t < s.Duration {
			if r := s.Duration - t; r > remain {
				remain = r
			}
			// Count each window occurrence once.
			if last := in.stallWin[i].Load(); last < win && in.stallWin[i].CompareAndSwap(last, win) {
				in.cStall.Inc()
			}
		}
	}
	return remain
}
