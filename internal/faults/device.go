package faults

// Device-side fault injection: the third choke point of the fault plane.
// FaultyDevice wraps a pagecache.BlockDevice and injects deterministic read
// errors and torn reads per the plan's DeviceRule; TornWriter truncates a
// write stream at a chosen byte, modeling a power-fail torn write that the
// external-memory store must detect at open time.

import (
	"fmt"
	"io"
	"sync/atomic"

	"havoqgt/internal/obs"
	"havoqgt/internal/pagecache"
)

// ReadError is the typed, retryable error injected for a device read fault.
// It implements Transient() so retry wrappers (pagecache.RetryDevice) can
// distinguish it from permanent device failure.
type ReadError struct {
	Off   int64  // requested offset
	Index uint64 // device read ordinal that failed
}

func (e *ReadError) Error() string {
	return fmt.Sprintf("faults: injected device read error (read #%d at offset %d)", e.Index, e.Off)
}

// Transient reports that the failure is worth retrying: the next attempt at
// the same offset draws a fresh read ordinal and may succeed.
func (e *ReadError) Transient() bool { return true }

// FaultyDevice wraps a block device with deterministic read-fault injection.
// Decisions are a pure function of (seed, read ordinal), so a single-
// threaded replay of the same read sequence injects the same faults.
type FaultyDevice struct {
	under pagecache.BlockDevice
	rule  DeviceRule
	seed  uint64
	reads atomic.Uint64

	cErr, cTorn *obs.Counter
}

var _ pagecache.BlockDevice = (*FaultyDevice)(nil)

// NewFaultyDevice wraps under with the plan's device-fault rule, counting
// injected faults in reg.
func NewFaultyDevice(under pagecache.BlockDevice, plan Plan, reg *obs.Registry) *FaultyDevice {
	return &FaultyDevice{
		under: under,
		rule:  plan.Device,
		seed:  plan.Seed,
		cErr:  reg.Counter(obs.FaultInjected("device_read_error")),
		cTorn: reg.Counter(obs.FaultInjected("device_torn_read")),
	}
}

func (d *FaultyDevice) devRoll(salt, idx uint64) float64 {
	h := hash(d.seed, salt, 0, 0, 0, idx)
	return float64(h>>11) / (1 << 53)
}

// ReadAt injects per the rule, then delegates. A read error fails the read
// outright with *ReadError; a torn read returns only a prefix of the data,
// which — because it is never injected on the device's final page — the
// page cache above detects as an unexpected EOF rather than caching a torn
// page silently.
func (d *FaultyDevice) ReadAt(p []byte, off int64) (int, error) {
	idx := d.reads.Add(1) - 1
	if d.rule.ReadError > 0 && d.devRoll(saltDevErr, idx) < d.rule.ReadError {
		d.cErr.Inc()
		return 0, &ReadError{Off: off, Index: idx}
	}
	n, err := d.under.ReadAt(p, off)
	if err == nil && n > 1 && off+int64(n) < d.under.Size() &&
		d.rule.TornRead > 0 && d.devRoll(saltDevTorn, idx) < d.rule.TornRead {
		d.cTorn.Inc()
		n /= 2 // short read mid-device: detectable, never silent
	}
	return n, err
}

// Size returns the underlying device capacity.
func (d *FaultyDevice) Size() int64 { return d.under.Size() }

// Close closes the underlying device.
func (d *FaultyDevice) Close() error { return d.under.Close() }

// Reads returns the number of read attempts observed (including failed ones).
func (d *FaultyDevice) Reads() uint64 { return d.reads.Load() }

// TornWriter models a torn write: it passes bytes through to W until
// CutAfter bytes have been written, then silently discards the rest while
// still reporting success — exactly what a power failure mid-write leaves
// behind. The store layer's open-time validation must catch the truncation.
type TornWriter struct {
	W        io.Writer
	CutAfter int64

	written int64
	torn    bool
	c       *obs.Counter
}

// NewTornWriter returns a writer that tears the stream after cutAfter bytes,
// counting the tear (once) in reg.
func NewTornWriter(w io.Writer, cutAfter int64, reg *obs.Registry) *TornWriter {
	if cutAfter < 0 {
		cutAfter = 0
	}
	return &TornWriter{W: w, CutAfter: cutAfter, c: reg.Counter(obs.FaultInjected("device_torn_write"))}
}

// Write implements io.Writer. It always reports len(p) bytes written.
func (t *TornWriter) Write(p []byte) (int, error) {
	keep := int64(len(p))
	if t.written+keep > t.CutAfter {
		keep = t.CutAfter - t.written
		if keep < 0 {
			keep = 0
		}
		if !t.torn {
			t.torn = true
			t.c.Inc()
		}
	}
	if keep > 0 {
		n, err := t.W.Write(p[:keep])
		t.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	t.written += int64(len(p)) - keep // account discarded bytes as "written"
	return len(p), nil
}

// Torn reports whether the writer has discarded any bytes.
func (t *TornWriter) Torn() bool { return t.torn }
