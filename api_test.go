package havoqgt

import (
	"testing"

	"havoqgt/internal/graph"
	"havoqgt/internal/ref"
	"havoqgt/internal/xrand"
)

func testEdges(n uint64, m int, seed uint64) []Edge {
	rng := xrand.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: Vertex(rng.Uint64n(n)), Dst: Vertex(rng.Uint64n(n))}
	}
	return edges
}

func TestFacadeBFS(t *testing.T) {
	raw := testEdges(64, 200, 1)
	g, err := NewGraph(raw, 64, Options{Ranks: 4, Undirect: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.BFS(3)
	if err != nil {
		t.Fatal(err)
	}
	adj := ref.BuildAdj(graph.Undirect(raw), 64)
	want, _ := ref.BFS(adj, 3)
	for v := range want {
		if res.Levels[v] != want[v] {
			t.Fatalf("level(%d) = %d, want %d", v, res.Levels[v], want[v])
		}
	}
	if res.Reached == 0 || res.MaxLevel == 0 {
		t.Fatalf("result summary empty: %+v", res)
	}
	if _, err := g.BFS(Vertex(99999)); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestFacadeReusableAcrossAlgorithms(t *testing.T) {
	raw := testEdges(64, 300, 2)
	g, err := NewGraph(raw, 64, Options{Ranks: 3, Undirect: true, Simplify: true, Topology: "2d"})
	if err != nil {
		t.Fatal(err)
	}
	und := graph.Simplify(graph.Undirect(raw))
	adj := ref.BuildAdj(und, 64)

	// Components.
	comps, err := g.Components()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels, wantCount := ref.Components(adj)
	if comps.Count != wantCount {
		t.Fatalf("components = %d, want %d", comps.Count, wantCount)
	}
	for v := range wantLabels {
		if comps.Labels[v] != wantLabels[v] {
			t.Fatalf("label(%d) = %d, want %d", v, comps.Labels[v], wantLabels[v])
		}
	}

	// K-core.
	kc, err := g.KCore(3)
	if err != nil {
		t.Fatal(err)
	}
	wantCore := ref.KCore(adj, 3)
	for v := range wantCore {
		if kc.InCore[v] != wantCore[v] {
			t.Fatalf("in-core(%d) = %v, want %v", v, kc.InCore[v], wantCore[v])
		}
	}
	if kc.CoreSize != ref.CoreSize(wantCore) {
		t.Fatalf("core size = %d", kc.CoreSize)
	}

	// Triangles.
	tri, err := g.CountTriangles()
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.CountTriangles(adj); tri != want {
		t.Fatalf("triangles = %d, want %d", tri, want)
	}

	// SSSP.
	sp, err := g.ShortestPaths(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Distances[1] != 0 {
		t.Fatal("source distance nonzero")
	}

	// BFS again on the same graph: the machine is reusable.
	if _, err := g.BFS(0); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGenerateRMAT(t *testing.T) {
	g, err := GenerateRMAT(9, 5, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 512 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	res, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached < 2 {
		t.Fatalf("reached %d vertices", res.Reached)
	}
	d, err := g.Degree(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	if _, err := g.Degree(Vertex(1 << 40)); err == nil {
		t.Fatal("out-of-range degree accepted")
	}
}

func TestFacadeEstimateTriangles(t *testing.T) {
	raw := testEdges(128, 2000, 9)
	g, err := NewGraph(raw, 128, Options{Ranks: 3, Undirect: true, Simplify: true})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.CountTriangles()
	if err != nil {
		t.Fatal(err)
	}
	if exact == 0 {
		t.Skip("no triangles at this seed")
	}
	est, err := g.EstimateTriangles(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(exact)/3 || est > float64(exact)*3 {
		t.Fatalf("estimate %.0f wildly off exact %d", est, exact)
	}
	if _, err := g.EstimateTriangles(1.5, 0); err == nil {
		t.Fatal("bad sample probability accepted")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewGraph(nil, 8, Options{Ranks: 2, Topology: "hypercube"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	g, err := NewGraph(nil, 8, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.KCore(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
