package havoqgt

// Facade over the multi-query execution engine (internal/engine): keep the
// partitioned graph resident and serve many concurrent traversals over the
// shared message plane, instead of one collective machine phase per call.
//
//	g, _ := havoqgt.GenerateRMAT(16, 42, havoqgt.Options{Ranks: 8})
//	e, _ := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 8})
//	defer e.Close()
//	q1, _ := e.SubmitBFS(0)
//	q2, _ := e.SubmitSSSP(17, 1)
//	bfsRes, _ := q1.Wait() // both traversals interleaved one message plane
//
// While an engine is attached, Graph.BFS/ShortestPaths/Components/KCore
// route through it automatically, so existing callers become concurrent
// without code changes.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/engine"
	"havoqgt/internal/obs"
)

// ErrQueryRejected is returned by Submit* when the engine's wait queue is
// full — the backpressure signal to retry later or shed load.
var ErrQueryRejected = engine.ErrRejected

// EngineOptions tune the multi-query engine.
type EngineOptions struct {
	// MaxInFlight bounds concurrently executing traversals (default 8).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an in-flight slot (default 64);
	// submissions beyond it fail with ErrQueryRejected.
	MaxQueue int
	// StepBatch bounds visitors one query executes per scheduling slice
	// (default 128): smaller values interleave more fairly, larger values
	// amortize better.
	StepBatch int
	// DefaultDeadline, if nonzero, cancels any query still running after
	// this long (per-query deadlines can be set on submission instead).
	DefaultDeadline time.Duration
	// Reliable runs the engine's shared mailbox with acked, retransmitted
	// delivery, tolerating message drop/duplication/corruption on the data
	// plane (see internal/faults for the fault model it defends against).
	Reliable bool
}

// Engine serves concurrent queries over one resident Graph. Create with
// Graph.StartEngine; all methods are safe for concurrent use.
type Engine struct {
	g *Graph
	e *engine.Engine
	d time.Duration // default deadline
}

// StartEngine attaches a multi-query engine to the graph. While attached,
// the engine owns the simulated machine: Graph traversal methods (including
// PageRank and CountTriangles) route through it, and classic collective
// operations fail until Close.
func (g *Graph) StartEngine(opts EngineOptions) (*Engine, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		return nil, errors.New("havoqgt: an engine is already attached to this graph")
	}
	// Out-of-core mode: hand each rank's pager to the engine so rank loops
	// park visits on absent adjacency pages instead of blocking on the
	// device. Entries must be genuinely non-nil interfaces (a typed-nil
	// *ooc.Pager in a core.RowPager slot would defeat the engine's nil
	// checks), which Store.Pager guarantees for a live store.
	var pagers []core.RowPager
	if g.stores != nil {
		pagers = make([]core.RowPager, len(g.stores))
		for rank, st := range g.stores {
			pagers[rank] = st.Pager()
		}
	}
	e, err := engine.Start(engine.Config{
		Machine:  g.machine,
		Parts:    g.parts,
		Ghosts:   g.ghosts,
		Topology: g.opts.Topology,
		Pagers:   pagers,
	}, engine.Options{
		MaxInFlight:        opts.MaxInFlight,
		MaxQueue:           opts.MaxQueue,
		StepBatch:          opts.StepBatch,
		Reliable:           opts.Reliable,
		DisableBucketOrder: g.opts.DisableBucketOrder,
	})
	if err != nil {
		return nil, err
	}
	g.eng = &Engine{g: g, e: e, d: opts.DefaultDeadline}
	return g.eng, nil
}

// Close drains every outstanding query, stops the engine, and returns the
// machine to classic (one-traversal-at-a-time) use.
func (e *Engine) Close() error {
	err := e.e.Close()
	e.g.mu.Lock()
	if e.g.eng == e {
		e.g.eng = nil
	}
	e.g.mu.Unlock()
	return err
}

// WriteStats writes the machine's full metrics snapshot (transport, mailbox,
// termination, visitor-queue, and engine counters) as JSON.
func (e *Engine) WriteStats(w io.Writer) error {
	return e.e.Obs().Snapshot().WriteJSON(w)
}

// Metrics returns the machine's observability registry, so serving layers
// (admission planes, stats endpoints, load harnesses) can register and read
// metrics in the same namespace as the engine and message plane.
func (e *Engine) Metrics() *obs.Registry { return e.e.Obs() }

// Query is a handle on one submitted query.
type Query struct {
	e    *Engine
	t    *engine.Ticket
	spec engine.Spec
	algo engine.Algo
	src  Vertex
	k    uint32
}

// ID returns the query's engine-assigned identifier.
func (q *Query) ID() uint32 { return q.t.ID() }

// Done is closed when the query completes (successfully or cancelled).
func (q *Query) Done() <-chan struct{} { return q.t.Done() }

// Cancel stops the query; its in-flight visitors drain without being
// applied. Cancelling a completed query is a no-op.
func (q *Query) Cancel() { q.t.Cancel() }

// ErrQueryCancelled is returned by Wait for a query that was cancelled
// (explicitly or by deadline) before completing.
var ErrQueryCancelled = errors.New("havoqgt: query cancelled")

// ErrQueryTimeout is the retryable subset of ErrQueryCancelled: the query was
// cancelled by its deadline, not by the caller, so resubmitting (ideally via
// Resume, which keeps the partial progress) can still succeed. It wraps
// ErrQueryCancelled, so existing errors.Is(err, ErrQueryCancelled) checks
// keep matching.
var ErrQueryTimeout = fmt.Errorf("%w: deadline exceeded (retryable)", ErrQueryCancelled)

func (q *Query) wait() (*engine.Result, error) {
	res := q.t.Wait()
	if res.Cancelled {
		if errors.Is(q.t.Err(), context.DeadlineExceeded) {
			return nil, ErrQueryTimeout
		}
		return nil, ErrQueryCancelled
	}
	return res, nil
}

// Resume resubmits a finished, cancelled query as a new attempt. For the
// resumable algorithms (those whose Algo.Resumable capability is set: bfs,
// sssp, cc) the new attempt is seeded from the cancelled run's checkpoint, so
// the paid-for traversal progress carries over; the rest (kcore, pagerank,
// triangles, bfs_do) carry no per-vertex monotone label and restart from
// scratch. The new
// attempt's deadline is d, or twice the previous attempt's when d is zero —
// so a caller retrying in a loop gets a geometrically growing budget and
// terminates. Resuming a still-running or cleanly completed query fails.
func (q *Query) Resume(d time.Duration) (*Query, error) {
	select {
	case <-q.t.Done():
	default:
		return nil, errors.New("havoqgt: query still running; nothing to resume")
	}
	if q.t.Err() == nil {
		return nil, errors.New("havoqgt: query completed; nothing to resume")
	}
	spec := q.spec
	spec.Resume = nil
	if d == 0 {
		d = 2 * spec.Deadline
	}
	spec.Deadline = d
	if cp := q.t.Checkpoint(); cp != nil {
		spec = cp.ResumeSpec(d)
	}
	return q.e.submit(spec, q.src)
}

// RecoveryPolicy bounds ExecuteWithRecovery's server-side retry loop.
type RecoveryPolicy struct {
	// Attempts is the total number of attempts, first try included
	// (default 3).
	Attempts int
	// Deadline is the first attempt's budget (0 = the engine default);
	// every retry doubles it.
	Deadline time.Duration
	// Backoff is the sleep before the first retry, doubling after each
	// (default 5ms). Applies to admission rejections too, making this the
	// client of the engine's 429-style backpressure.
	Backoff time.Duration
}

func (p RecoveryPolicy) normalized() RecoveryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 5 * time.Millisecond
	}
	return p
}

// ExecuteWithRecovery runs one query under a bounded retry policy: a
// deadline-expired attempt is resubmitted from its checkpoint with a doubled
// budget after a doubling backoff, and an admission rejection (ErrQueryRejected)
// is retried after the same backoff. Non-retryable failures — explicit
// cancellation, validation errors — return immediately. After the attempt
// budget, the last error is returned.
func (e *Engine) ExecuteWithRecovery(algo string, source Vertex, weightSeed uint64, k uint32, pol RecoveryPolicy) (*QueryResult, error) {
	pol = pol.normalized()
	spec := engine.Spec{Algo: engine.Algo(algo), Source: source, WeightSeed: weightSeed, K: k, Deadline: pol.Deadline}
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		q, err := e.submit(spec, source)
		if err != nil {
			if errors.Is(err, ErrQueryRejected) {
				lastErr = err // overload: back off and re-attempt admission
				continue
			}
			return nil, err
		}
		res, err := q.Wait()
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, ErrQueryTimeout) {
			return nil, err // explicit cancel or hard failure: not retryable
		}
		spec = q.spec
		spec.Resume = nil
		spec.Deadline *= 2
		if cp := q.t.Checkpoint(); cp != nil {
			spec = cp.ResumeSpec(spec.Deadline)
		}
	}
	return nil, lastErr
}

// QueryResult is one completed query's output; exactly one algorithm field
// is non-nil.
type QueryResult struct {
	BFS        *BFSResult
	SSSP       *SSSPResult
	Components *ComponentsResult
	KCore      *KCoreResult
	PageRank   *PageRankResult
	Triangles  *TrianglesResult
}

// Wait blocks until the query completes and returns its result, or
// ErrQueryCancelled.
func (q *Query) Wait() (*QueryResult, error) {
	switch q.algo {
	case engine.AlgoBFS, engine.AlgoBFSDO:
		r, err := q.waitBFS()
		if err != nil {
			return nil, err
		}
		return &QueryResult{BFS: r}, nil
	case engine.AlgoSSSP:
		r, err := q.waitSSSP()
		if err != nil {
			return nil, err
		}
		return &QueryResult{SSSP: r}, nil
	case engine.AlgoCC:
		r, err := q.waitComponents()
		if err != nil {
			return nil, err
		}
		return &QueryResult{Components: r}, nil
	case engine.AlgoKCore:
		r, err := q.waitKCore()
		if err != nil {
			return nil, err
		}
		return &QueryResult{KCore: r}, nil
	case engine.AlgoPageRank:
		r, err := q.waitPageRank()
		if err != nil {
			return nil, err
		}
		return &QueryResult{PageRank: r}, nil
	case engine.AlgoTriangles:
		r, err := q.waitTriangles()
		if err != nil {
			return nil, err
		}
		return &QueryResult{Triangles: r}, nil
	}
	return nil, fmt.Errorf("havoqgt: unknown query algorithm %q", q.algo)
}

func (q *Query) waitBFS() (*BFSResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	out := &BFSResult{Source: q.src, Levels: res.Levels, Parents: res.Parents}
	finishBFSResult(out)
	return out, nil
}

func (q *Query) waitSSSP() (*SSSPResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &SSSPResult{Source: q.src, Distances: res.Dist, Parents: res.Parents}, nil
}

func (q *Query) waitComponents() (*ComponentsResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &ComponentsResult{Labels: res.Labels, Count: res.Components}, nil
}

func (q *Query) waitKCore() (*KCoreResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &KCoreResult{K: q.k, InCore: res.InCore, CoreSize: res.CoreSize}, nil
}

func (q *Query) waitPageRank() (*PageRankResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	iters := q.spec.Iters
	if iters == 0 {
		iters = DefaultPageRankIters
	}
	return &PageRankResult{Iters: iters, Ranks: res.Ranks}, nil
}

func (q *Query) waitTriangles() (*TrianglesResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &TrianglesResult{Count: res.Triangles}, nil
}

// submit wraps engine admission with the facade's default deadline.
func (e *Engine) submit(spec engine.Spec, src Vertex) (*Query, error) {
	if spec.Deadline == 0 {
		spec.Deadline = e.d
	}
	t, err := e.e.Submit(spec)
	if err != nil {
		return nil, err
	}
	return &Query{e: e, t: t, spec: spec, algo: spec.Algo, src: src, k: spec.K}, nil
}

// SubmitBFS starts an asynchronous BFS query from source.
func (e *Engine) SubmitBFS(source Vertex) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoBFS, Source: source}, source)
}

// SubmitSSSP starts an asynchronous single-source shortest-path query.
func (e *Engine) SubmitSSSP(source Vertex, weightSeed uint64) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoSSSP, Source: source, WeightSeed: weightSeed}, source)
}

// SubmitComponents starts an asynchronous connected-components query.
func (e *Engine) SubmitComponents() (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoCC}, 0)
}

// SubmitKCore starts an asynchronous k-core query (k >= 1). The graph must
// be simple (Options.Simplify).
func (e *Engine) SubmitKCore(k uint32) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoKCore, K: k}, 0)
}

// SubmitBFSDO starts an asynchronous direction-optimizing BFS from source.
// Its Levels are hash-identical to SubmitBFS on the same graph; only the
// traversal schedule (and typically the runtime) differs.
func (e *Engine) SubmitBFSDO(source Vertex) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoBFSDO, Source: source}, source)
}

// SubmitPageRank starts an asynchronous fixed-point PageRank query. iters = 0
// runs the default iteration count; values beyond the per-query cap are
// rejected at admission.
func (e *Engine) SubmitPageRank(iters uint32) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoPageRank, Iters: iters}, 0)
}

// SubmitTriangles starts an asynchronous exact triangle count. Duplicate
// edges and self-loops are ignored, so the graph need not be simplified.
func (e *Engine) SubmitTriangles() (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoTriangles}, 0)
}

// QuerySpec names a query generically, for serving layers that receive the
// algorithm as a string. Fields irrelevant to the algorithm are ignored.
type QuerySpec struct {
	Algo       string
	Source     Vertex
	WeightSeed uint64
	K          uint32
	Iters      uint32
	Deadline   time.Duration
}

// SubmitQuery starts the query described by a generic spec.
func (e *Engine) SubmitQuery(qs QuerySpec) (*Query, error) {
	spec := engine.Spec{
		Algo: engine.Algo(qs.Algo), Source: qs.Source, WeightSeed: qs.WeightSeed,
		K: qs.K, Iters: qs.Iters, Deadline: qs.Deadline,
	}
	return e.submit(spec, qs.Source)
}

// SubmitWithDeadline is like the Submit helpers but cancels the query if it
// is still running after d.
func (e *Engine) SubmitWithDeadline(algo string, source Vertex, weightSeed uint64, k uint32, d time.Duration) (*Query, error) {
	spec := engine.Spec{Algo: engine.Algo(algo), Source: source, WeightSeed: weightSeed, K: k, Deadline: d}
	return e.submit(spec, source)
}
