package havoqgt

// Facade over the multi-query execution engine (internal/engine): keep the
// partitioned graph resident and serve many concurrent traversals over the
// shared message plane, instead of one collective machine phase per call.
//
//	g, _ := havoqgt.GenerateRMAT(16, 42, havoqgt.Options{Ranks: 8})
//	e, _ := g.StartEngine(havoqgt.EngineOptions{MaxInFlight: 8})
//	defer e.Close()
//	q1, _ := e.SubmitBFS(0)
//	q2, _ := e.SubmitSSSP(17, 1)
//	bfsRes, _ := q1.Wait() // both traversals interleaved one message plane
//
// While an engine is attached, Graph.BFS/ShortestPaths/Components/KCore
// route through it automatically, so existing callers become concurrent
// without code changes.

import (
	"errors"
	"fmt"
	"io"
	"time"

	"havoqgt/internal/engine"
)

// ErrQueryRejected is returned by Submit* when the engine's wait queue is
// full — the backpressure signal to retry later or shed load.
var ErrQueryRejected = engine.ErrRejected

// EngineOptions tune the multi-query engine.
type EngineOptions struct {
	// MaxInFlight bounds concurrently executing traversals (default 8).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an in-flight slot (default 64);
	// submissions beyond it fail with ErrQueryRejected.
	MaxQueue int
	// StepBatch bounds visitors one query executes per scheduling slice
	// (default 128): smaller values interleave more fairly, larger values
	// amortize better.
	StepBatch int
	// DefaultDeadline, if nonzero, cancels any query still running after
	// this long (per-query deadlines can be set on submission instead).
	DefaultDeadline time.Duration
}

// Engine serves concurrent queries over one resident Graph. Create with
// Graph.StartEngine; all methods are safe for concurrent use.
type Engine struct {
	g *Graph
	e *engine.Engine
	d time.Duration // default deadline
}

// StartEngine attaches a multi-query engine to the graph. While attached,
// the engine owns the simulated machine: Graph traversal methods route
// through it, and machine-exclusive operations (triangle counting) fail
// until Close.
func (g *Graph) StartEngine(opts EngineOptions) (*Engine, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		return nil, errors.New("havoqgt: an engine is already attached to this graph")
	}
	e, err := engine.Start(engine.Config{
		Machine:  g.machine,
		Parts:    g.parts,
		Ghosts:   g.ghosts,
		Topology: g.opts.Topology,
	}, engine.Options{
		MaxInFlight: opts.MaxInFlight,
		MaxQueue:    opts.MaxQueue,
		StepBatch:   opts.StepBatch,
	})
	if err != nil {
		return nil, err
	}
	g.eng = &Engine{g: g, e: e, d: opts.DefaultDeadline}
	return g.eng, nil
}

// Close drains every outstanding query, stops the engine, and returns the
// machine to classic (one-traversal-at-a-time) use.
func (e *Engine) Close() error {
	err := e.e.Close()
	e.g.mu.Lock()
	if e.g.eng == e {
		e.g.eng = nil
	}
	e.g.mu.Unlock()
	return err
}

// WriteStats writes the machine's full metrics snapshot (transport, mailbox,
// termination, visitor-queue, and engine counters) as JSON.
func (e *Engine) WriteStats(w io.Writer) error {
	return e.e.Obs().Snapshot().WriteJSON(w)
}

// Query is a handle on one submitted query.
type Query struct {
	t    *engine.Ticket
	algo engine.Algo
	src  Vertex
	k    uint32
}

// ID returns the query's engine-assigned identifier.
func (q *Query) ID() uint32 { return q.t.ID() }

// Done is closed when the query completes (successfully or cancelled).
func (q *Query) Done() <-chan struct{} { return q.t.Done() }

// Cancel stops the query; its in-flight visitors drain without being
// applied. Cancelling a completed query is a no-op.
func (q *Query) Cancel() { q.t.Cancel() }

// ErrQueryCancelled is returned by Wait for a query that was cancelled
// (explicitly or by deadline) before completing.
var ErrQueryCancelled = errors.New("havoqgt: query cancelled")

func (q *Query) wait() (*engine.Result, error) {
	res := q.t.Wait()
	if res.Cancelled {
		return nil, ErrQueryCancelled
	}
	return res, nil
}

// QueryResult is one completed query's output; exactly one algorithm field
// is non-nil.
type QueryResult struct {
	BFS        *BFSResult
	SSSP       *SSSPResult
	Components *ComponentsResult
	KCore      *KCoreResult
}

// Wait blocks until the query completes and returns its result, or
// ErrQueryCancelled.
func (q *Query) Wait() (*QueryResult, error) {
	switch q.algo {
	case engine.AlgoBFS:
		r, err := q.waitBFS()
		if err != nil {
			return nil, err
		}
		return &QueryResult{BFS: r}, nil
	case engine.AlgoSSSP:
		r, err := q.waitSSSP()
		if err != nil {
			return nil, err
		}
		return &QueryResult{SSSP: r}, nil
	case engine.AlgoCC:
		r, err := q.waitComponents()
		if err != nil {
			return nil, err
		}
		return &QueryResult{Components: r}, nil
	case engine.AlgoKCore:
		r, err := q.waitKCore()
		if err != nil {
			return nil, err
		}
		return &QueryResult{KCore: r}, nil
	}
	return nil, fmt.Errorf("havoqgt: unknown query algorithm %q", q.algo)
}

func (q *Query) waitBFS() (*BFSResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	out := &BFSResult{Source: q.src, Levels: res.Levels, Parents: res.Parents}
	finishBFSResult(out)
	return out, nil
}

func (q *Query) waitSSSP() (*SSSPResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &SSSPResult{Source: q.src, Distances: res.Dist, Parents: res.Parents}, nil
}

func (q *Query) waitComponents() (*ComponentsResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &ComponentsResult{Labels: res.Labels, Count: res.Components}, nil
}

func (q *Query) waitKCore() (*KCoreResult, error) {
	res, err := q.wait()
	if err != nil {
		return nil, err
	}
	return &KCoreResult{K: q.k, InCore: res.InCore, CoreSize: res.CoreSize}, nil
}

// submit wraps engine admission with the facade's default deadline.
func (e *Engine) submit(spec engine.Spec, src Vertex) (*Query, error) {
	if spec.Deadline == 0 {
		spec.Deadline = e.d
	}
	t, err := e.e.Submit(spec)
	if err != nil {
		return nil, err
	}
	return &Query{t: t, algo: spec.Algo, src: src, k: spec.K}, nil
}

// SubmitBFS starts an asynchronous BFS query from source.
func (e *Engine) SubmitBFS(source Vertex) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoBFS, Source: source}, source)
}

// SubmitSSSP starts an asynchronous single-source shortest-path query.
func (e *Engine) SubmitSSSP(source Vertex, weightSeed uint64) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoSSSP, Source: source, WeightSeed: weightSeed}, source)
}

// SubmitComponents starts an asynchronous connected-components query.
func (e *Engine) SubmitComponents() (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoCC}, 0)
}

// SubmitKCore starts an asynchronous k-core query (k >= 1). The graph must
// be simple (Options.Simplify).
func (e *Engine) SubmitKCore(k uint32) (*Query, error) {
	return e.submit(engine.Spec{Algo: engine.AlgoKCore, K: k}, 0)
}

// SubmitWithDeadline is like the Submit helpers but cancels the query if it
// is still running after d.
func (e *Engine) SubmitWithDeadline(algo string, source Vertex, weightSeed uint64, k uint32, d time.Duration) (*Query, error) {
	spec := engine.Spec{Algo: engine.Algo(algo), Source: source, WeightSeed: weightSeed, K: k, Deadline: d}
	return e.submit(spec, source)
}
