# CI and humans run the same commands: .github/workflows/ci.yml calls these
# targets verbatim.

GO ?= go

.PHONY: all build test race lint vet fmt fmt-check staticcheck fuzz-smoke chaos chaos-short bench bench-smoke bench-ooc bench-traffic bench-algos bench-algos-smoke experiments serve-smoke cluster-smoke cluster-chaos bench-net clean

STATICCHECK ?= staticcheck

# Seconds of fuzzing per target in fuzz-smoke; CI uses the default.
FUZZTIME ?= 30s

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode run under the race detector; slow simulation tests are gated
# behind testing.Short() so this finishes in minutes. The multi-query engine
# and its differential tests additionally run in full (not -short): concurrent
# traversals sharing one message plane are exactly where races hide.
race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/engine ./internal/algos/algotest

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Skips quietly when staticcheck isn't on PATH (the container has no network
# installs); CI installs it with `go install` and fails on findings.
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

lint: vet fmt-check staticcheck

# Brief native-fuzzing runs of every fuzz target (one -fuzz pattern per
# invocation; the toolchain rejects multi-target fuzzing). The committed
# regression corpus under testdata/fuzz/ runs as seeds in plain `make test`
# too; this target actually mutates inputs for FUZZTIME each.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzEnvelopeDecode$$ -fuzztime=$(FUZZTIME) ./internal/mailbox
	$(GO) test -run=^$$ -fuzz=^FuzzTopologyRoute$$ -fuzztime=$(FUZZTIME) ./internal/mailbox
	$(GO) test -run=^$$ -fuzz=^FuzzCacheReadAt$$ -fuzztime=$(FUZZTIME) ./internal/pagecache

# Chaos harness (DESIGN.md §8): seeded fault plans × every algorithm × every
# routing topology on a fault-injecting transport, plus the engine recovery
# ladder, the termination detector under adversarial control-plane schedules,
# and the device-fault retry paths. Results must match the fault-free
# reference or fail with a typed error — never hang, panic, or silently
# diverge. chaos-short is the reduced fixed-seed sweep CI runs under -race.
chaos:
	$(GO) test -count=1 -run 'TestChaos' ./internal/check
	$(GO) test -count=1 -run 'SurvivesControl|Mux' ./internal/termination
	$(GO) test -count=1 -run 'Reliable|Fault|Torn|Retry' ./internal/mailbox ./internal/pagecache ./internal/extmem ./internal/engine

chaos-short:
	$(GO) test -race -short -count=1 -run 'TestChaos' ./internal/check
	$(GO) test -race -short -count=1 -run 'SurvivesControl|Mux' ./internal/termination

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Allocation-budget smoke (BENCH_msgplane.json, DESIGN.md §9): the
# TestAllocBudget* suite pins the message-plane hot paths to their
# steady-state allocation budgets (loopback and decode/deliver at ~0
# allocs/cycle, routed duplex well under the pre-pooling floor), and the
# percentile tests pin the nearest-rank quantile fix. Fast enough to run
# on every push; a regression here means pooling or arena delivery broke.
bench-smoke:
	$(GO) test -count=1 -run 'TestAllocBudget' -v ./internal/mailbox
	$(GO) test -count=1 -run 'TestPercentile' ./cmd/havoqd

# Out-of-core serving smoke (BENCH_ooc_smoke.json, DESIGN.md §11): the
# selfbench workload at resident fractions 1 and 1/4 on a tiny graph. The
# sweep itself asserts the correctness gates — every phase's result hash
# identical to the fully-resident baseline, and real cache activity (misses
# and hits both nonzero) at the reduced budget — and exits non-zero on any
# violation. The committed full sweep (BENCH_ooc.json) uses `-ooc` defaults.
bench-ooc:
	$(GO) run ./cmd/havoqd -ooc -scale 12 -ranks 4 -bench-queries 12 \
		-ooc-fractions 1,0.25 -ooc-out BENCH_ooc_smoke.json

# Front-door traffic-plane smoke (BENCH_traffic_smoke.json, DESIGN.md §12):
# the open-loop load harness on a tiny graph with the acceptance gates on —
# zero 5xx in every phase, >= 50% of hot-key requests absorbed by
# cache+collapse, quota sheds with Retry-After under 10x overload, admitted
# p99 within 4x of the uniform baseline, and the deterministic 16->1 collapse
# probe. Exits non-zero on any gate violation. The committed full run
# (BENCH_traffic.json) uses `-loadbench` defaults at scale 12.
bench-traffic:
	$(GO) run ./cmd/havoqd -loadbench -scale 10 -ranks 4 		-load-qps 60 -load-duration 3s -load-out BENCH_traffic_smoke.json

# Algorithm-layer before/after benchmark (BENCH_algos.json, DESIGN.md §14):
# every algorithm's seed implementation vs this repo's — top-down vs
# direction-optimizing BFS, binary-heap vs delta-stepping SSSP, offline-only
# vs engine-served pagerank/triangles — each measured serialized and
# concurrent on the same scale-14 RMAT graph the acceptance criteria name.
# Gates enforced: every before/after pair hash-identical, and DO-BFS strictly
# faster than top-down. This full run regenerates the committed
# BENCH_algos.json; CI runs the reduced bench-algos-smoke with the same gates.
bench-algos:
	$(GO) run ./cmd/havoqd -algobench -scale 14 -ranks 8 -algos-out BENCH_algos.json

bench-algos-smoke:
	$(GO) run ./cmd/havoqd -algobench -scale 11 -ranks 4 -algos-out BENCH_algos_smoke.json

# Regenerate every figure/table at laptop scale; per-phase obs communication
# profiles land in obs_profiles.json (see -obs-json/-obs-csv flags).
experiments:
	$(GO) run ./cmd/experiments all

# End-to-end query-serving smoke: build a scale-12 RMAT graph, serve it with
# havoqd, fire 50 concurrent mixed queries over real HTTP, verify every
# answer, drain, exit non-zero on any failure.
serve-smoke:
	$(GO) run ./cmd/havoqd -smoke -scale 12 -ranks 8 -queries 50 -addr 127.0.0.1:0

# Real multi-process cluster smoke: boot a coordinator plus 4 worker
# OS processes on localhost (rank frames crossing the kernel's TCP stack),
# run BFS/SSSP/CC through the cluster, and require the deterministic result
# hashes to be identical to the in-process engine on the same scale-12 RMAT
# graph. A hard watchdog aborts with exit 124 if the cluster wedges; worker
# output lands in cluster-worker-N.log for post-mortems.
cluster-smoke:
	$(GO) run ./cmd/havoqd -smoke -cluster -workers 4 -ranks 4 -scale 12 -cluster-timeout 5m

# Cluster self-healing chaos (DESIGN.md §13): kill -9 workers of a live
# 4-process cluster with queries in flight, and require (1) every in-flight
# query to resolve with a typed worker-lost error instead of hanging, (2) the
# coordinator to report the dead slot and shed typed while degraded, (3) the
# respawned worker to re-join under a bumped epoch, and (4) post-heal query
# hashes identical to the in-process engine. Watchdog aborts with exit 124 on
# any wedge; worker logs (appended across respawns) in cluster-worker-N.log.
cluster-chaos:
	$(GO) run ./cmd/havoqd -chaos -cluster -workers 4 -ranks 4 -scale 11 \
		-heartbeat 200ms -liveness 2s -join-retry 60s -chaos-kills 2 -cluster-timeout 5m

# Real-network benchmark (BENCH_net.json): the serialized-vs-concurrent
# comparison over a 4-process TCP data plane, with per-phase mesh byte/frame
# counters swept from the workers.
bench-net:
	$(GO) run ./cmd/havoqd -selfbench -cluster -workers 4 -ranks 8 -scale 14 -cluster-timeout 10m

clean:
	rm -f obs_profiles.json obs_profiles.csv cluster-worker-*.log BENCH_ooc_smoke.json BENCH_traffic_smoke.json BENCH_algos_smoke.json
	$(GO) clean ./...
