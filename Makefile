# CI and humans run the same commands: .github/workflows/ci.yml calls these
# targets verbatim.

GO ?= go

.PHONY: all build test race lint vet fmt fmt-check fuzz-smoke bench experiments clean

# Seconds of fuzzing per target in fuzz-smoke; CI uses the default.
FUZZTIME ?= 30s

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode run under the race detector; slow simulation tests are gated
# behind testing.Short() so this finishes in minutes.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check

# Brief native-fuzzing runs of every fuzz target (one -fuzz pattern per
# invocation; the toolchain rejects multi-target fuzzing). The committed
# regression corpus under testdata/fuzz/ runs as seeds in plain `make test`
# too; this target actually mutates inputs for FUZZTIME each.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=^FuzzEnvelopeDecode$$ -fuzztime=$(FUZZTIME) ./internal/mailbox
	$(GO) test -run=^$$ -fuzz=^FuzzTopologyRoute$$ -fuzztime=$(FUZZTIME) ./internal/mailbox
	$(GO) test -run=^$$ -fuzz=^FuzzCacheReadAt$$ -fuzztime=$(FUZZTIME) ./internal/pagecache

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Regenerate every figure/table at laptop scale; per-phase obs communication
# profiles land in obs_profiles.json (see -obs-json/-obs-csv flags).
experiments:
	$(GO) run ./cmd/experiments all

clean:
	rm -f obs_profiles.json obs_profiles.csv
	$(GO) clean ./...
