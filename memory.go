package havoqgt

// Memory-budget facade: move the resident graph's adjacency data out of core
// (behind the user-space page cache over simulated NVRAM or a real file) so
// the serving engine traverses more graph than the DRAM budget holds — the
// paper's semi-external configuration (§VIII-A) under the multi-query
// engine. Vertex state stays in DRAM; only the CSR target array (the bulk of
// the data) pages in on demand, with visits parking on missing pages while
// resident work continues.

import (
	"errors"
	"fmt"
	"time"

	"havoqgt/internal/obs"
	"havoqgt/internal/ooc"
)

// MemoryConfig sets the out-of-core memory budget for SetMemoryBudget.
type MemoryConfig struct {
	// ResidentFraction is the per-rank DRAM page-cache budget as a fraction
	// of that rank's serialized adjacency bytes, in (0, 1]. 1/8 keeps at
	// most an eighth of the edge data cached.
	ResidentFraction float64
	// PageSize is the cache page size in bytes (default 4096).
	PageSize int
	// DeviceLatency and DeviceQueueDepth model the NVRAM device when Dir is
	// empty (defaults 25µs, 64 — enterprise NAND-flash class).
	DeviceLatency    time.Duration
	DeviceQueueDepth int
	// Dir, when non-empty, backs each rank's adjacency with a real file
	// under it instead of simulated NVRAM. Files are removed by
	// ResetMemoryBudget.
	Dir string
	// RetryAttempts bounds device read retries (0 = pagecache default).
	RetryAttempts int
}

// MemoryStats aggregates the out-of-core serving counters across ranks.
type MemoryStats struct {
	// Page cache, summed over ranks. Misses counts device fault-ins exactly;
	// Stalls counts waits for a frame with every frame pinned or loading.
	CacheHits      uint64
	CacheMisses    uint64
	CacheStalls    uint64
	CacheEvictions uint64
	BytesRead      uint64
	// HitRate is hits/(hits+misses) over the aggregate, 1 with no accesses.
	HitRate float64
	// Device retry plane.
	Retries   uint64
	Exhausted uint64
	// Pager fetch pipeline.
	DemandFetches   uint64
	Prefetches      uint64
	PrefetchDropped uint64
}

// TraversalCounters are the machine-wide visitor-queue counters relevant to
// out-of-core serving, read from the metrics registry. PushedDelta between
// two snapshots divided by wall time approximates TEPS for edge-frontier
// algorithms (every traversed edge pushes one visitor).
type TraversalCounters struct {
	Pushed   uint64
	Executed uint64
	Parked   uint64
	Unparked uint64
}

// SetMemoryBudget moves every rank's CSR adjacency out of core under the
// given budget. Must be called with no engine attached (the store swap is
// not safe under in-flight queries); a subsequent StartEngine serves in
// latency-hiding out-of-core mode, and classic (serialized) traversals read
// through the cache synchronously — the latency-not-hidden baseline the
// benchmark compares against. Undo with ResetMemoryBudget; calling again
// without resetting fails.
func (g *Graph) SetMemoryBudget(cfg MemoryConfig) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		return errors.New("havoqgt: cannot change the memory budget while an engine is attached (close it first)")
	}
	if g.stores != nil {
		return errors.New("havoqgt: a memory budget is already set (ResetMemoryBudget first)")
	}
	stores := make([]*ooc.Store, len(g.parts))
	for rank, part := range g.parts {
		st, err := ooc.Externalize(part, ooc.Config{
			ResidentFraction: cfg.ResidentFraction,
			PageSize:         cfg.PageSize,
			Latency:          cfg.DeviceLatency,
			QueueDepth:       cfg.DeviceQueueDepth,
			Dir:              cfg.Dir,
			Rank:             rank,
			RetryAttempts:    cfg.RetryAttempts,
			Obs:              g.machine.Obs(),
		})
		if err != nil {
			for r := 0; r < rank; r++ {
				stores[r].Restore()
			}
			return fmt.Errorf("havoqgt: externalize rank %d: %w", rank, err)
		}
		stores[rank] = st
	}
	g.stores = stores
	return nil
}

// ResetMemoryBudget restores fully-resident in-memory adjacency storage,
// tearing down the device stacks (and removing backing files). No-op when no
// budget is set.
func (g *Graph) ResetMemoryBudget() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		return errors.New("havoqgt: cannot change the memory budget while an engine is attached (close it first)")
	}
	var first error
	for _, st := range g.stores {
		if err := st.Restore(); err != nil && first == nil {
			first = err
		}
	}
	g.stores = nil
	return first
}

// OutOfCore reports whether a memory budget is currently set.
func (g *Graph) OutOfCore() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stores != nil
}

// MemoryStats aggregates the out-of-core counters across ranks. Zero-valued
// when no budget is set.
func (g *Graph) MemoryStats() MemoryStats {
	g.mu.Lock()
	stores := g.stores
	g.mu.Unlock()
	var out MemoryStats
	for _, st := range stores {
		s := st.Stats()
		out.CacheHits += s.Cache.Hits
		out.CacheMisses += s.Cache.Misses
		out.CacheStalls += s.Cache.Stalls
		out.CacheEvictions += s.Cache.Evictions
		out.BytesRead += s.Cache.BytesRead
		out.Retries += s.Retries
		out.Exhausted += s.Exhausted
		out.DemandFetches += s.DemandFetches
		out.Prefetches += s.Prefetches
		out.PrefetchDropped += s.PrefetchDropped
	}
	if total := out.CacheHits + out.CacheMisses; total > 0 {
		out.HitRate = float64(out.CacheHits) / float64(total)
	} else {
		out.HitRate = 1
	}
	return out
}

// TraversalCounters reads the machine-wide visitor-queue counters. Benchmark
// code diffs successive snapshots to attribute work to a phase.
func (g *Graph) TraversalCounters() TraversalCounters {
	reg, p := g.machine.Obs(), g.opts.Ranks
	return TraversalCounters{
		Pushed:   reg.PerRank(obs.CorePushed, p).Total(),
		Executed: reg.PerRank(obs.CoreExecuted, p).Total(),
		Parked:   reg.PerRank(obs.CoreParked, p).Total(),
		Unparked: reg.PerRank(obs.CoreUnparked, p).Total(),
	}
}
