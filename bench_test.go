// Package havoqgt's root benchmarks regenerate every figure and table of
// the paper's evaluation section through the experiment harness (one bench
// per figure/table, reporting the headline metric), plus microbenchmarks of
// the substrates. Run:
//
//	go test -bench=. -benchmem
//
// cmd/experiments prints the full row-by-row series; these benches track the
// end-to-end cost and key metrics over time.
package havoqgt

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"havoqgt/internal/core"
	"havoqgt/internal/extmem"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/harness"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/pagecache"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
	"havoqgt/internal/termination"
	"havoqgt/internal/xrand"
)

func benchSizing() harness.Sizing {
	return harness.Sizing{Seed: 42, MaxP: 4, VertsPerRankLog2: 9, HubScaleMax: 13, Sources: 1}
}

// --- one bench per paper figure/table ---

func BenchmarkFig1HubGrowth(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		tab := harness.Figure1(s)
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig2Imbalance(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure2(s)
	}
}

func BenchmarkFig3EdgeListExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Figure3()
	}
}

func BenchmarkFig4Routing(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure4(s)
	}
}

func BenchmarkFig5BFSWeakScaling(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure5(s)
	}
}

func BenchmarkFig6KCore(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure6(s)
	}
}

func BenchmarkFig7Triangles(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure7(s)
	}
}

func BenchmarkFig8ExternalBFS(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure8(s)
	}
}

func BenchmarkFig9DataScaling(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure9(s)
	}
}

func BenchmarkFig10Diameter(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure10(s)
	}
}

func BenchmarkFig11MaxDegree(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure11(s)
	}
}

func BenchmarkFig12EdgeListVs1D(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure12(s)
	}
}

func BenchmarkFig13Ghosts(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Figure13(s)
	}
}

func BenchmarkTableIIGraph500(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.TableII(s)
	}
}

// --- headline kernels at a fixed size, reporting TEPS ---

func benchBFSTEPS(b *testing.B, ghosts int, topo string, nv *extmem.NVRAMConfig) {
	spec := harness.RMATSpec(12, 42)
	var teps float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunBFS(harness.BFSOpts{
			CommonOpts: harness.CommonOpts{P: 4, Topology: topo, NVRAM: nv, Seed: 42},
			Graph:      spec, Sources: 1, Ghosts: ghosts,
		})
		if err != nil {
			b.Fatal(err)
		}
		teps = res.TEPS
	}
	b.ReportMetric(teps, "TEPS")
}

func BenchmarkBFSNoGhosts(b *testing.B)  { benchBFSTEPS(b, 0, "1d", nil) }
func BenchmarkBFSGhosts256(b *testing.B) { benchBFSTEPS(b, 256, "1d", nil) }
func BenchmarkBFS2DRouting(b *testing.B) { benchBFSTEPS(b, 256, "2d", nil) }
func BenchmarkBFS3DRouting(b *testing.B) { benchBFSTEPS(b, 256, "3d", nil) }

func BenchmarkBFSNVRAM(b *testing.B) {
	nv := extmem.DefaultNVRAM()
	nv.CacheBytes = 1 << 16
	benchBFSTEPS(b, 256, "1d", &nv)
}

func BenchmarkKCoreRMAT(b *testing.B) {
	spec := harness.RMATSpec(12, 42)
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunKCore(harness.KCoreOpts{
			CommonOpts: harness.CommonOpts{P: 4, Seed: 42},
			Graph:      spec, Ks: []uint32{4},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleSmallWorld(b *testing.B) {
	spec := harness.SWSpec(1<<11, 16, 0.1, 42)
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTriangles(harness.TriangleOpts{
			CommonOpts: harness.CommonOpts{P: 4, Seed: 42},
			Graph:      spec,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

func BenchmarkRMATGeneration(b *testing.B) {
	g := generators.NewGraph500(14, 1)
	b.SetBytes(int64(g.NumEdges() * 16))
	for i := 0; i < b.N; i++ {
		g.Generate()
	}
}

func BenchmarkPAGeneration(b *testing.B) {
	g := generators.NewPA(1<<12, 8, 0.1, 1)
	for i := 0; i < b.N; i++ {
		g.Generate()
	}
}

func BenchmarkBijectionApply(b *testing.B) {
	bij := xrand.NewBijection(1<<20, 1)
	for i := 0; i < b.N; i++ {
		bij.Apply(uint64(i) & (1<<20 - 1))
	}
}

func BenchmarkSequentialBFS(b *testing.B) {
	g := generators.NewGraph500(14, 1)
	edges := graph.Undirect(g.Generate())
	adj := ref.BuildAdj(edges, g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.BFS(adj, 0)
	}
}

func BenchmarkEdgeListBuild(b *testing.B) {
	g := generators.NewGraph500(12, 1)
	for i := 0; i < b.N; i++ {
		rt.NewMachine(4).Run(func(r *rt.Rank) {
			local := graph.Undirect(g.GenerateChunk(r.Rank(), r.Size()))
			if _, err := partition.BuildEdgeList(r, local, g.NumVertices()); err != nil {
				panic(err)
			}
		})
	}
}

func BenchmarkGhostTableBuild(b *testing.B) {
	g := generators.NewGraph500(12, 1)
	parts := make([]*partition.Part, 4)
	rt.NewMachine(4).Run(func(r *rt.Rank) {
		local := graph.Undirect(g.GenerateChunk(r.Rank(), r.Size()))
		part, err := partition.BuildEdgeList(r, local, g.NumVertices())
		if err != nil {
			panic(err)
		}
		parts[r.Rank()] = part
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildGhostTable(parts[i%4], 256)
	}
}

func BenchmarkPageCacheHit(b *testing.B) {
	data := make([]byte, 1<<20)
	c, err := pagecache.New(&pagecache.MemDevice{Data: data}, 4096, 64)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	c.ReadAt(buf, 0) // warm one page
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ReadAt(buf, int64(i%8)*256)
	}
}

func BenchmarkPageCacheMissEvict(b *testing.B) {
	data := make([]byte, 1<<22)
	c, err := pagecache.New(&pagecache.MemDevice{Data: data}, 4096, 16)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride beyond capacity so every read evicts.
		c.ReadAt(buf, int64(i%1024)*4096)
	}
}

func BenchmarkMailboxAggregation(b *testing.B) {
	rt.NewMachine(2).Run(func(r *rt.Rank) {
		if r.Rank() != 0 {
			// Rank 1 drains whatever arrives until rank 0 signals done.
			det := termination.New(r)
			box := mailbox.New(r, mailbox.NewDirect(2), det)
			for !det.Pump(box.Idle()) {
				box.Poll()
			}
			return
		}
		det := termination.New(r)
		box := mailbox.New(r, mailbox.NewDirect(2), det)
		payload := make([]byte, 24)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			box.Send(1, payload)
		}
		b.StopTimer()
		box.FlushAll()
		for !det.Pump(box.Idle()) {
			box.Poll()
		}
	})
}

func BenchmarkTerminationWave(b *testing.B) {
	// Each iteration runs one full quiescence detection (>= 2 waves) on an
	// idle 8-rank machine.
	for i := 0; i < b.N; i++ {
		waves := make([]uint64, 1)
		rt.NewMachine(8).Run(func(r *rt.Rank) {
			det := termination.New(r)
			deadline := time.Now().Add(60 * time.Second)
			for !det.Pump(true) {
				runtime.Gosched() // as the visitor queue's idle loop does
				if time.Now().After(deadline) {
					panic("no quiescence")
				}
			}
			if r.Rank() == 0 {
				waves[0] = det.Waves
			}
		})
		if waves[0] == 0 {
			b.Fatal("no waves")
		}
	}
}

func BenchmarkCollectiveAllReduce(b *testing.B) {
	rt.NewMachine(8).Run(func(r *rt.Rank) {
		for i := 0; i < b.N; i++ {
			r.AllReduceU64(uint64(i), rt.Sum)
		}
	})
}

var sinkEdges []graph.Edge

func BenchmarkUndirect(b *testing.B) {
	g := generators.NewGraph500(14, 1)
	edges := g.Generate()
	b.SetBytes(int64(len(edges) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkEdges = graph.Undirect(edges)
	}
}

func BenchmarkCensus(b *testing.B) {
	g := generators.NewGraph500(14, 1)
	deg := graph.OutDegrees(graph.Undirect(g.Generate()), g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Census(deg)
	}
}

func Example_tableFormat() {
	t := &harness.Table{Title: "demo", Columns: []string{"x", "y"}}
	t.AddRow(1, 2)
	fmt.Print(t.String())
	// Output:
	// == demo ==
	// x  y
	// 1  2
}

func BenchmarkSMPBFS(b *testing.B) {
	var teps float64
	for i := 0; i < b.N; i++ {
		t, err := harness.RunSMPBFS(harness.RMATSpec(13, 42), 4, nil, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		teps = t
	}
	b.ReportMetric(teps, "TEPS")
}

func BenchmarkSMPBFSNVRAM(b *testing.B) {
	nv := extmem.DefaultNVRAM()
	nv.CacheBytes = 1 << 17
	var teps float64
	for i := 0; i < b.N; i++ {
		t, err := harness.RunSMPBFS(harness.RMATSpec(13, 42), 4, &nv, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		teps = t
	}
	b.ReportMetric(teps, "TEPS")
}

func BenchmarkExtensions(b *testing.B) {
	s := benchSizing()
	for i := 0; i < b.N; i++ {
		harness.Extensions(s)
	}
}

func BenchmarkFacadeBFS(b *testing.B) {
	g, err := GenerateRMAT(12, 42, Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BFS(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampledTriangles(b *testing.B) {
	g, err := GenerateRMAT(11, 42, Options{Ranks: 4, Simplify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.EstimateTriangles(0.1, 7); err != nil {
			b.Fatal(err)
		}
	}
}
