package havoqgt

import (
	"fmt"
	"testing"

	"havoqgt/internal/algos/bfs"
	"havoqgt/internal/algos/cc"
	"havoqgt/internal/algos/kcore"
	"havoqgt/internal/algos/sssp"
	"havoqgt/internal/algos/triangle"
	"havoqgt/internal/core"
	"havoqgt/internal/generators"
	"havoqgt/internal/graph"
	"havoqgt/internal/harness"
	"havoqgt/internal/mailbox"
	"havoqgt/internal/partition"
	"havoqgt/internal/ref"
	"havoqgt/internal/rt"
)

// TestIntegrationSweep runs every distributed algorithm across a matrix of
// graph models, rank counts, routing topologies, and ghost settings, and
// checks all results against the sequential references plus the distributed
// Graph500-style BFS validator. This is the end-to-end safety net for the
// whole stack: generators → sort/partition → mailbox → visitor queue →
// termination → gather.
func TestIntegrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is heavy")
	}
	type gcase struct {
		name  string
		edges []graph.Edge
		n     uint64
	}
	var cases []gcase
	{
		g := generators.NewGraph500(8, 77)
		cases = append(cases, gcase{"rmat", graph.Simplify(graph.Undirect(g.Generate())), g.NumVertices()})
	}
	{
		g := generators.NewPA(1<<8, 4, 0.1, 78)
		cases = append(cases, gcase{"pa", graph.Simplify(graph.Undirect(g.Generate())), g.NumVertices})
	}
	{
		g := generators.NewSmallWorld(1<<8, 6, 0.05, 79)
		cases = append(cases, gcase{"sw", graph.Simplify(graph.Undirect(g.Generate())), g.NumVertices})
	}

	for _, gc := range cases {
		adj := ref.BuildAdj(gc.edges, gc.n)
		wantLevels, _ := ref.BFS(adj, 1)
		wantCore := ref.KCore(adj, 3)
		wantTri := ref.CountTriangles(adj)
		wantLabels, wantComps := ref.Components(adj)
		w := func(u, v graph.Vertex) uint64 { return sssp.Weight(u, v, 5) }
		wantDist, _ := ref.Dijkstra(adj, 1, w)

		for _, p := range []int{1, 3, 8} {
			for _, topoName := range []string{"1d", "2d", "3d"} {
				for _, ghosts := range []int{0, 64} {
					name := fmt.Sprintf("%s/p%d/%s/g%d", gc.name, p, topoName, ghosts)
					t.Run(name, func(t *testing.T) {
						levels := make([]uint32, gc.n)
						labels := make([]graph.Vertex, gc.n)
						dists := make([]uint64, gc.n)
						inCore := make([]bool, gc.n)
						tris := make([]uint64, p)
						comps := make([]uint64, p)

						rt.NewMachine(p).Run(func(r *rt.Rank) {
							var local []graph.Edge
							for i, e := range gc.edges {
								if i%p == r.Rank() {
									local = append(local, e)
								}
							}
							part, err := partition.BuildEdgeList(r, local, gc.n)
							if err != nil {
								panic(err)
							}
							topo, err := mailbox.ByName(topoName, p)
							if err != nil {
								panic(err)
							}
							cfg := core.Config{Topology: topo}
							if ghosts > 0 {
								cfg.Ghosts = core.BuildGhostTable(part, ghosts)
							}
							lo, hi := part.Owners.MasterRange(part.Rank)

							bres := bfs.Run(r, part, 1, cfg)
							if err := harness.ValidateBFS(r, part, bres.BFS, 1); err != nil {
								panic(fmt.Sprintf("validate: %v", err))
							}
							sres := sssp.Run(r, part, 1, 5, cfg)
							cres := cc.Run(r, part, cfg)
							comps[r.Rank()] = cc.NumComponents(r, cres)
							kres := kcore.Run(r, part, 3, cfg)
							tres := triangle.Run(r, part, cfg)
							tris[r.Rank()] = tres.GlobalCount

							for v := lo; v < hi; v++ {
								i, _ := part.LocalIndex(graph.Vertex(v))
								levels[v] = bres.Level[i]
								labels[v] = cres.Label[i]
								dists[v] = sres.Dist[i]
								inCore[v] = kres.Alive[i]
							}
						})

						for v := uint64(0); v < gc.n; v++ {
							if levels[v] != wantLevels[v] {
								t.Fatalf("bfs level(%d) = %d, want %d", v, levels[v], wantLevels[v])
							}
							if labels[v] != wantLabels[v] {
								t.Fatalf("cc label(%d) = %d, want %d", v, labels[v], wantLabels[v])
							}
							if dists[v] != wantDist[v] {
								t.Fatalf("sssp dist(%d) = %d, want %d", v, dists[v], wantDist[v])
							}
							if inCore[v] != wantCore[v] {
								t.Fatalf("kcore(%d) = %v, want %v", v, inCore[v], wantCore[v])
							}
						}
						if tris[0] != wantTri {
							t.Fatalf("triangles = %d, want %d", tris[0], wantTri)
						}
						if comps[0] != wantComps {
							t.Fatalf("components = %d, want %d", comps[0], wantComps)
						}
					})
				}
			}
		}
	}
}
